#include <gtest/gtest.h>

#include "src/common/interner.h"
#include "src/common/result.h"
#include "src/common/status.h"
#include "src/common/string_util.h"

namespace gqlite {
namespace {

TEST(Status, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status s = Status::SyntaxError("unexpected token");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kSyntaxError);
  EXPECT_EQ(s.message(), "unexpected token");
  EXPECT_EQ(s.ToString(), "SyntaxError: unexpected token");
}

TEST(Status, CopyIsCheapAndShared) {
  Status a = Status::Internal("boom");
  Status b = a;
  EXPECT_EQ(b.message(), "boom");
  EXPECT_EQ(b.code(), StatusCode::kInternal);
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

Result<int> Doubled(int x) {
  GQL_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return v * 2;
}

TEST(Result, ValuePath) {
  Result<int> r = Doubled(21);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(Result, ErrorPath) {
  Result<int> r = Doubled(-1);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(StringUtil, CaseConversion) {
  EXPECT_EQ(AsciiToLower("MaTcH"), "match");
  EXPECT_EQ(AsciiToUpper("MaTcH"), "MATCH");
  EXPECT_TRUE(AsciiEqualsIgnoreCase("OPTIONAL", "optional"));
  EXPECT_FALSE(AsciiEqualsIgnoreCase("OPTIONAL", "option"));
}

TEST(StringUtil, Utf8CaseMappingInvalidBytesPassThrough) {
  EXPECT_EQ(Utf8ToUpper("ärger"), "ÄRGER");
  EXPECT_EQ(Utf8ToLower("ÄRGER"), "ärger");
  // Lone continuation / invalid lead bytes stay byte-identical.
  EXPECT_EQ(Utf8ToUpper(std::string_view("a\x80z", 3)),
            std::string_view("A\x80Z", 3));
  // Overlong encodings (C1 A1 would decode to 'a') must not be
  // normalized into a shorter valid sequence.
  EXPECT_EQ(Utf8ToUpper(std::string_view("\xC1\xA1", 2)),
            std::string_view("\xC1\xA1", 2));
  // Truncated sequence at end of string.
  EXPECT_EQ(Utf8ToLower(std::string_view("A\xC3", 2)),
            std::string_view("a\xC3", 2));
}

TEST(StringUtil, JoinSplit) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  std::vector<std::string> parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  parts = SplitBy("one--two--three", "--");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "two");
}

TEST(StringUtil, TrimAndPredicates) {
  EXPECT_EQ(TrimView("  x y  "), "x y");
  EXPECT_EQ(LTrimView("  z"), "z");
  EXPECT_EQ(RTrimView("z  "), "z");
  EXPECT_TRUE(StartsWith("hello", "he"));
  EXPECT_TRUE(EndsWith("hello", "lo"));
  EXPECT_TRUE(Contains("hello", "ell"));
  EXPECT_FALSE(Contains("hello", "xyz"));
}

TEST(Interner, InternAndLookup) {
  StringInterner in;
  SymbolId a = in.Intern("Person");
  SymbolId b = in.Intern("Movie");
  SymbolId a2 = in.Intern("Person");
  EXPECT_EQ(a, a2);
  EXPECT_NE(a, b);
  EXPECT_EQ(in.ToString(a), "Person");
  EXPECT_EQ(in.Lookup("Movie"), b);
  EXPECT_EQ(in.Lookup("Nope"), kNoSymbol);
  EXPECT_EQ(in.Intern(""), kNoSymbol);
}

TEST(Interner, ManyStringsStableIds) {
  StringInterner in;
  std::vector<SymbolId> ids;
  for (int i = 0; i < 1000; ++i) ids.push_back(in.Intern("s" + std::to_string(i)));
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(in.ToString(ids[i]), "s" + std::to_string(i));
    EXPECT_EQ(in.Lookup("s" + std::to_string(i)), ids[i]);
  }
}

}  // namespace
}  // namespace gqlite
