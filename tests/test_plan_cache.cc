// Plan-cache subsystem tests: auto-parameterized key normalization, LRU
// eviction order, generation-based invalidation (graph statistics and the
// named-graph catalog), counter correctness, Prepare/Execute semantics,
// and the guarantee that synthetic `$_pN` names never collide with user
// parameters.

#include <gtest/gtest.h>

#include "src/core/engine.h"
#include "src/frontend/canonicalize.h"
#include "src/frontend/parser.h"

namespace gqlite {
namespace {

ValueMap P(std::initializer_list<std::pair<const std::string, Value>> kv) {
  return ValueMap(kv);
}

QueryResult MustRun(CypherEngine& engine, const std::string& q,
                    const ValueMap& params = {}) {
  auto r = engine.Execute(q, params);
  EXPECT_TRUE(r.ok()) << q << "\n  " << r.status().ToString();
  return std::move(r).value();
}

// ---- Canonicalization ------------------------------------------------------

TEST(AutoParameterize, LiteralsBecomeSyntheticParameters) {
  auto q = ParseQuery("MATCH (n {id: 1}) WHERE n.v > 10 RETURN n");
  ASSERT_TRUE(q.ok());
  AutoParameterization ap = AutoParameterize(&*q);
  EXPECT_EQ(ap.count, 2);
  ASSERT_EQ(ap.extracted.size(), 2u);
  EXPECT_EQ(ap.extracted.at("_p0").AsInt(), 1);
  EXPECT_EQ(ap.extracted.at("_p1").AsInt(), 10);
  std::string key = NormalizedQueryKey(*q);
  EXPECT_NE(key.find("$_p0"), std::string::npos) << key;
  EXPECT_NE(key.find("$_p1"), std::string::npos) << key;
}

TEST(AutoParameterize, SameShapeSameKey) {
  auto a = ParseQuery("MATCH (n:Person {id: 1})-[:KNOWS]->(m) "
                      "WHERE m.age > 30 RETURN m.name AS name");
  auto b = ParseQuery("MATCH (n:Person {id: 42})-[:KNOWS]->(m) "
                      "WHERE m.age > 99 RETURN m.name AS name");
  ASSERT_TRUE(a.ok() && b.ok());
  AutoParameterize(&*a);
  AutoParameterize(&*b);
  EXPECT_EQ(NormalizedQueryKey(*a), NormalizedQueryKey(*b));
}

TEST(AutoParameterize, DifferentShapeDifferentKey) {
  auto a = ParseQuery("MATCH (n {id: 1}) RETURN n");
  auto b = ParseQuery("MATCH (n {uid: 1}) RETURN n");  // different key name
  ASSERT_TRUE(a.ok() && b.ok());
  AutoParameterize(&*a);
  AutoParameterize(&*b);
  EXPECT_NE(NormalizedQueryKey(*a), NormalizedQueryKey(*b));
}

TEST(AutoParameterize, ProjectionItemsAndOrderByAreLeftAlone) {
  // Un-aliased return items derive their column name from the expression
  // text, and ORDER BY resolves projected columns by that text — both
  // must keep their literals.
  auto q = ParseQuery("MATCH (n) RETURN n.v + 1 ORDER BY n.v + 1");
  ASSERT_TRUE(q.ok());
  AutoParameterization ap = AutoParameterize(&*q);
  EXPECT_EQ(ap.count, 0);
  std::string key = NormalizedQueryKey(*q);
  EXPECT_EQ(key.find("$_p"), std::string::npos) << key;
}

TEST(AutoParameterize, SkipLimitAreExtracted) {
  auto q = ParseQuery("MATCH (n) RETURN n.v AS v SKIP 1 LIMIT 2");
  ASSERT_TRUE(q.ok());
  AutoParameterization ap = AutoParameterize(&*q);
  EXPECT_EQ(ap.count, 2);
}

TEST(AutoParameterize, SyntheticNamesSkipUserParameters) {
  // `$_p0` is taken by the user; the extracted literal must pick the next
  // free name.
  auto q = ParseQuery("MATCH (n) WHERE n.a = $_p0 AND n.b = 7 RETURN n");
  ASSERT_TRUE(q.ok());
  AutoParameterization ap = AutoParameterize(&*q);
  EXPECT_EQ(ap.count, 1);
  ASSERT_TRUE(ap.extracted.count("_p1"));
  EXPECT_EQ(ap.extracted.at("_p1").AsInt(), 7);
}

// ---- Cache behaviour through the engine ------------------------------------

TEST(PlanCache, LiteralVariantsShareOnePlan) {
  CypherEngine engine;
  MustRun(engine, "CREATE ({id: 1, v: 10}), ({id: 2, v: 20}), "
                  "({id: 3, v: 30})");
  auto r1 = MustRun(engine, "MATCH (n {id: 1}) RETURN n.v AS v");
  auto r2 = MustRun(engine, "MATCH (n {id: 2}) RETURN n.v AS v");
  auto r3 = MustRun(engine, "MATCH (n {id: 3}) RETURN n.v AS v");
  ASSERT_EQ(r1.table.NumRows(), 1u);
  EXPECT_EQ(r1.table.rows()[0][0].AsInt(), 10);
  EXPECT_EQ(r2.table.rows()[0][0].AsInt(), 20);
  EXPECT_EQ(r3.table.rows()[0][0].AsInt(), 30);
  const PlanCacheStats& s = engine.plan_cache_stats();
  EXPECT_EQ(s.misses, 1u);  // first read plans
  EXPECT_EQ(s.hits, 2u);    // the other literals reuse it
  EXPECT_EQ(engine.plan_cache_size(), 1u);
}

TEST(PlanCache, HitCountsAndDistinctQueries) {
  CypherEngine engine;
  MustRun(engine, "CREATE (:A {v: 1})-[:T]->(:B {v: 2})");
  const std::string q1 = "MATCH (a:A) RETURN count(*) AS c";
  const std::string q2 = "MATCH (a:A)-[:T]->(b:B) RETURN count(*) AS c";
  MustRun(engine, q1);
  MustRun(engine, q1);
  MustRun(engine, q2);
  MustRun(engine, q2);
  MustRun(engine, q1);
  const PlanCacheStats& s = engine.plan_cache_stats();
  EXPECT_EQ(s.misses, 2u);
  EXPECT_EQ(s.hits, 3u);
  EXPECT_EQ(s.evictions, 0u);
  EXPECT_EQ(engine.plan_cache_size(), 2u);
}

TEST(PlanCache, LruEvictionOrder) {
  EngineOptions opts;
  opts.plan_cache_capacity = 2;
  CypherEngine engine(opts);
  MustRun(engine, "CREATE ({v: 1})");
  const std::string qa = "MATCH (a) RETURN count(*) AS a";
  const std::string qb = "MATCH (b) RETURN count(*) AS b";
  const std::string qc = "MATCH (c) RETURN count(*) AS c";
  MustRun(engine, qa);  // cache: [a]
  MustRun(engine, qb);  // cache: [b, a]
  MustRun(engine, qa);  // promote a: [a, b]
  MustRun(engine, qc);  // evicts b (LRU): [c, a]
  EXPECT_EQ(engine.plan_cache_stats().evictions, 1u);
  uint64_t hits_before = engine.plan_cache_stats().hits;
  MustRun(engine, qa);  // still cached (was promoted)
  EXPECT_EQ(engine.plan_cache_stats().hits, hits_before + 1);
  uint64_t misses_before = engine.plan_cache_stats().misses;
  MustRun(engine, qb);  // was evicted → miss (and evicts a)
  EXPECT_EQ(engine.plan_cache_stats().misses, misses_before + 1);
  EXPECT_EQ(engine.plan_cache_size(), 2u);
}

TEST(PlanCache, InvalidationAfterCreateAndDelete) {
  CypherEngine engine;
  MustRun(engine, "CREATE (:A {v: 1}), (:A {v: 2})");
  const std::string q = "MATCH (a:A) RETURN count(*) AS c";
  EXPECT_EQ(MustRun(engine, q).table.rows()[0][0].AsInt(), 2);
  EXPECT_EQ(MustRun(engine, q).table.rows()[0][0].AsInt(), 2);
  EXPECT_EQ(engine.plan_cache_stats().hits, 1u);

  // CREATE changes the statistics generation: the cached plan is stale.
  MustRun(engine, "CREATE (:A {v: 3})");
  EXPECT_EQ(MustRun(engine, q).table.rows()[0][0].AsInt(), 3);
  EXPECT_EQ(engine.plan_cache_stats().invalidations, 1u);

  // And DELETE does too.
  MustRun(engine, "MATCH (a:A {v: 3}) DELETE a");
  EXPECT_EQ(MustRun(engine, q).table.rows()[0][0].AsInt(), 2);
  EXPECT_EQ(engine.plan_cache_stats().invalidations, 2u);
}

TEST(PlanCache, PropertyUpdatesDoNotInvalidate) {
  CypherEngine engine;
  MustRun(engine, "CREATE (:A {v: 1})");
  const std::string q = "MATCH (a:A) RETURN a.v AS v";
  EXPECT_EQ(MustRun(engine, q).table.rows()[0][0].AsInt(), 1);
  // SET only touches a property value: plans do not depend on it, the
  // cached plan stays valid and still sees the new value at runtime.
  MustRun(engine, "MATCH (a:A) SET a.v = 99");
  EXPECT_EQ(MustRun(engine, q).table.rows()[0][0].AsInt(), 99);
  EXPECT_EQ(engine.plan_cache_stats().invalidations, 0u);
  EXPECT_EQ(engine.plan_cache_stats().hits, 1u);
}

TEST(PlanCache, PropertyDriftPastThresholdInvalidates) {
  // Pure property writes do not bump stats_version, but they move the
  // NDV sketches a cost-sensitive plan baked its selectivities from:
  // past kDataDriftThreshold increments of data_version the entry must
  // re-plan. Below the threshold (the single-SET workload) it must NOT.
  CypherEngine engine;
  MustRun(engine, "CREATE (:A {v: 1}), (:A {v: 2}), (:A {v: 3})");
  const std::string q = "MATCH (a:A) RETURN count(*) AS c";
  EXPECT_EQ(MustRun(engine, q).table.rows()[0][0].AsInt(), 3);
  MustRun(engine, "MATCH (a:A {v: 1}) SET a.v = 9");  // small drift
  EXPECT_EQ(MustRun(engine, q).table.rows()[0][0].AsInt(), 3);
  EXPECT_EQ(engine.plan_cache_stats().invalidations, 0u);
  EXPECT_GE(engine.plan_cache_stats().hits, 1u);

  // 3 nodes x 6 rounds = 18 property writes >= the threshold of 16.
  for (int round = 0; round < 6; ++round) {
    MustRun(engine, "MATCH (a:A) SET a.w = " + std::to_string(round));
  }
  EXPECT_EQ(MustRun(engine, q).table.rows()[0][0].AsInt(), 3);
  EXPECT_GE(engine.plan_cache_stats().invalidations, 1u);
}

TEST(PlanCache, PropertyRewriteFlipsTheCheaperPlan) {
  // The scenario the drift bound exists for: a property rewrite moves an
  // equality predicate's NDV enough that the cheapest anchor CHANGES.
  // 60 :A nodes all share p = 0, so `a.p = 0` is unselective and the
  // 2-node :B scan anchors the chain. After rewriting p to distinct
  // values the same predicate selects ~1 row and the anchor flips to :A.
  CypherEngine engine;
  for (int i = 0; i < 60; ++i) {
    MustRun(engine, "CREATE (:A {id: " + std::to_string(i) + ", p: 0})");
  }
  MustRun(engine, "CREATE (:B {id: 100}), (:B {id: 101})");
  MustRun(engine,
          "MATCH (a:A {id: 0}), (b:B {id: 100}) CREATE (a)-[:R]->(b)");
  const std::string q =
      "MATCH (a:A)-[:R]->(b:B) WHERE a.p = 0 RETURN count(*) AS c";

  auto before = engine.Explain(q);
  ASSERT_TRUE(before.ok()) << before.status().ToString();
  EXPECT_NE(before->find("NodeByLabelScan(b:B)"), std::string::npos)
      << *before;
  EXPECT_EQ(MustRun(engine, q).table.rows()[0][0].AsInt(), 1);

  // 60 property writes: far past the drift threshold, and the p sketch
  // now holds ~61 distinct values.
  MustRun(engine, "MATCH (a:A) SET a.p = a.id + 1");
  auto after = engine.Explain(q);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_NE(after->find("NodeByLabelScan(a:A)"), std::string::npos)
      << *after;

  // The cached entry from the pre-rewrite execution must not serve the
  // stale plan: the lookup invalidates and re-plans.
  uint64_t invalidations_before = engine.plan_cache_stats().invalidations;
  EXPECT_EQ(MustRun(engine, q).table.rows()[0][0].AsInt(), 0);
  EXPECT_GT(engine.plan_cache_stats().invalidations, invalidations_before);
}

TEST(PlanCache, LabelChangesInvalidate) {
  CypherEngine engine;
  MustRun(engine, "CREATE (:A {v: 1}), ({v: 2})");
  const std::string q = "MATCH (a:A) RETURN count(*) AS c";
  EXPECT_EQ(MustRun(engine, q).table.rows()[0][0].AsInt(), 1);
  MustRun(engine, "MATCH (n {v: 2}) SET n:A");
  EXPECT_EQ(MustRun(engine, q).table.rows()[0][0].AsInt(), 2);
  EXPECT_GE(engine.plan_cache_stats().invalidations, 1u);
}

TEST(PlanCache, CatalogRebindInvalidates) {
  CypherEngine engine;
  auto other = std::make_shared<PropertyGraph>();
  other->CreateNode({"A"}, {});
  engine.RegisterGraph("g", other);
  const std::string q = "FROM GRAPH g MATCH (a:A) RETURN count(*) AS c";
  EXPECT_EQ(MustRun(engine, q).table.rows()[0][0].AsInt(), 1);
  EXPECT_EQ(MustRun(engine, q).table.rows()[0][0].AsInt(), 1);
  EXPECT_EQ(engine.plan_cache_stats().hits, 1u);
  // Rebinding the name to a different graph must stale the plan.
  auto replacement = std::make_shared<PropertyGraph>();
  replacement->CreateNode({"A"}, {});
  replacement->CreateNode({"A"}, {});
  engine.RegisterGraph("g", replacement);
  EXPECT_EQ(MustRun(engine, q).table.rows()[0][0].AsInt(), 2);
  EXPECT_GE(engine.plan_cache_stats().invalidations, 1u);
}

TEST(PlanCache, DisabledCacheStillAnswers) {
  EngineOptions opts;
  opts.use_plan_cache = false;
  CypherEngine engine(opts);
  MustRun(engine, "CREATE ({v: 1})");
  const std::string q = "MATCH (n) RETURN n.v AS v";
  EXPECT_EQ(MustRun(engine, q).table.rows()[0][0].AsInt(), 1);
  EXPECT_EQ(MustRun(engine, q).table.rows()[0][0].AsInt(), 1);
  EXPECT_EQ(engine.plan_cache_size(), 0u);
  EXPECT_EQ(engine.plan_cache_stats().hits, 0u);
  EXPECT_EQ(engine.plan_cache_stats().misses, 0u);
}

TEST(PlanCache, ZeroCapacityDisables) {
  EngineOptions opts;
  opts.plan_cache_capacity = 0;
  CypherEngine engine(opts);
  MustRun(engine, "CREATE ({v: 1})");
  MustRun(engine, "MATCH (n) RETURN n.v AS v");
  MustRun(engine, "MATCH (n) RETURN n.v AS v");
  EXPECT_EQ(engine.plan_cache_size(), 0u);
}

TEST(PlanCache, InterpreterModeBypassesCache) {
  EngineOptions opts;
  opts.mode = ExecutionMode::kInterpreter;
  CypherEngine engine(opts);
  MustRun(engine, "CREATE ({v: 1})");
  MustRun(engine, "MATCH (n) RETURN n.v AS v");
  MustRun(engine, "MATCH (n) RETURN n.v AS v");
  EXPECT_EQ(engine.plan_cache_size(), 0u);
}

TEST(PlanCache, DerivedColumnNamesSurviveCanonicalization) {
  CypherEngine engine;
  MustRun(engine, "CREATE ({v: 41})");
  auto r = MustRun(engine, "MATCH (n) RETURN n.v + 1");
  ASSERT_EQ(r.table.fields().size(), 1u);
  EXPECT_EQ(r.table.fields()[0], "(n.v + 1)");
  EXPECT_EQ(r.table.rows()[0][0].AsInt(), 42);
}

TEST(PlanCache, OrderByOverProjectedAggregateStillWorks) {
  CypherEngine engine;
  MustRun(engine,
          "CREATE ({g: 1}), ({g: 1}), ({g: 2}), ({g: 2}), ({g: 2})");
  // ORDER BY count(*) + 1 resolves by expression text against the
  // projected column — canonicalization must not break the match.
  auto r = MustRun(engine,
                   "MATCH (n) RETURN n.g AS g, count(*) + 1 "
                   "ORDER BY count(*) + 1 DESC");
  ASSERT_EQ(r.table.NumRows(), 2u);
  EXPECT_EQ(r.table.rows()[0][0].AsInt(), 2);
  EXPECT_EQ(r.table.rows()[1][0].AsInt(), 1);
}

TEST(PlanCache, DifferentEngineOptionsDoNotShareEntries) {
  CypherEngine engine;
  MustRun(engine, "CREATE ({v: 1})-[:T]->({v: 2})");
  const std::string q = "MATCH (a)-[:T]->(b) RETURN count(*) AS c";
  MustRun(engine, q);
  EngineOptions opts = engine.options();
  opts.use_join_expand = true;
  engine.set_options(opts);
  MustRun(engine, q);  // different fingerprint → separate entry
  EXPECT_EQ(engine.plan_cache_size(), 2u);
  EXPECT_EQ(engine.plan_cache_stats().misses, 2u);
}

TEST(PlanCache, QuotedStringLiteralsDoNotCollide) {
  // Projection-item literals stay in the normalized text, where
  // FormatValue prints strings unescaped: `'a' + 'b'` and the single
  // literal `a' + 'b` would unparse identically. The cache key's literal
  // digest (length-prefixed) must keep them apart.
  CypherEngine engine;
  auto r1 = MustRun(engine, "RETURN 'a' + 'b' AS x");
  auto r2 = MustRun(engine, "RETURN 'a\\' + \\'b' AS x");
  EXPECT_EQ(r1.table.rows()[0][0].AsString(), "ab");
  EXPECT_EQ(r2.table.rows()[0][0].AsString(), "a' + 'b");
  EXPECT_EQ(engine.plan_cache_size(), 2u);
}

TEST(PlanCache, FloatLiteralsBeyondDisplayPrecisionDoNotCollide) {
  // FormatValue prints floats at display precision; the digest uses
  // round-trip precision so near-identical float literals stay distinct.
  CypherEngine engine;
  auto r1 = MustRun(engine, "RETURN 1.0 AS x");
  auto r2 = MustRun(engine, "RETURN 1.0000000000000002 AS x");
  EXPECT_NE(r1.table.rows()[0][0].AsFloat(), r2.table.rows()[0][0].AsFloat());
  EXPECT_EQ(engine.plan_cache_size(), 2u);
}

TEST(PlanCache, SweepReleasesStaleEntriesOnCatalogChange) {
  CypherEngine engine;
  MustRun(engine, "CREATE ({v: 1})");
  MustRun(engine, "MATCH (n) RETURN n.v AS v");
  EXPECT_EQ(engine.plan_cache_size(), 1u);
  // Rebinding the default graph strands the entry; the next read query
  // (any key) sweeps it so the old graph is released promptly.
  auto replacement = std::make_shared<PropertyGraph>();
  replacement->CreateNode({}, {{"v", Value::Int(2)}});
  engine.set_default_graph(replacement);
  MustRun(engine, "MATCH (m) RETURN count(*) AS c");
  EXPECT_EQ(engine.plan_cache_size(), 1u);  // stale entry swept
  EXPECT_GE(engine.plan_cache_stats().invalidations, 1u);
  // And queries actually see the new default graph.
  EXPECT_EQ(MustRun(engine, "MATCH (n) RETURN n.v AS v")
                .table.rows()[0][0]
                .AsInt(),
            2);
}

// ---- Prepare / Execute -----------------------------------------------------

TEST(Prepare, ExecuteWithDifferentParamsMatchesFreshPlanning) {
  EngineOptions cold_opts;
  cold_opts.use_plan_cache = false;
  CypherEngine cached, fresh(cold_opts);
  const char* setup =
      "CREATE (:P {id: 1, v: 10})-[:T]->(:P {id: 2, v: 20}), "
      "(:P {id: 2, v: 20})-[:T]->(:P {id: 3, v: 30})";
  MustRun(cached, setup);
  MustRun(fresh, setup);

  auto stmt = cached.Prepare(
      "MATCH (a:P {id: $id})-[:T]->(b) RETURN b.v AS v");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_FALSE(stmt->updating());
  for (int64_t id = 1; id <= 3; ++id) {
    auto got = cached.Execute(*stmt, P({{"id", Value::Int(id)}}));
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    auto want = fresh.Execute("MATCH (a:P {id: $id})-[:T]->(b) "
                              "RETURN b.v AS v",
                              P({{"id", Value::Int(id)}}));
    ASSERT_TRUE(want.ok());
    EXPECT_TRUE(got->table.SameBag(want->table)) << "id=" << id;
  }
  // One plan, reused for every execution after the first.
  EXPECT_EQ(cached.plan_cache_stats().misses, 1u);
  EXPECT_EQ(cached.plan_cache_stats().hits, 2u);
}

TEST(Prepare, ExtractedLiteralsActAsDefaults) {
  CypherEngine engine;
  MustRun(engine, "CREATE ({id: 7, v: 70})");
  auto stmt = engine.Prepare("MATCH (n {id: 7}) RETURN n.v AS v");
  ASSERT_TRUE(stmt.ok());
  auto r = engine.Execute(*stmt);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->table.NumRows(), 1u);
  EXPECT_EQ(r->table.rows()[0][0].AsInt(), 70);
}

TEST(Prepare, UserParamNamedLikeSyntheticIsNotShadowed) {
  CypherEngine engine;
  MustRun(engine, "CREATE ({a: 5, b: 7})");
  // The query uses $_p0 itself; the literal 7 must get a different
  // synthetic name, and the user's $_p0 binding must win for $_p0.
  auto stmt = engine.Prepare(
      "MATCH (n) WHERE n.a = $_p0 AND n.b = 7 RETURN count(*) AS c");
  ASSERT_TRUE(stmt.ok());
  auto hit = engine.Execute(*stmt, P({{"_p0", Value::Int(5)}}));
  ASSERT_TRUE(hit.ok()) << hit.status().ToString();
  EXPECT_EQ(hit->table.rows()[0][0].AsInt(), 1);
  auto miss = engine.Execute(*stmt, P({{"_p0", Value::Int(6)}}));
  ASSERT_TRUE(miss.ok());
  EXPECT_EQ(miss->table.rows()[0][0].AsInt(), 0);
}

TEST(Prepare, UpdatingQueriesRunOnTheInterpreter) {
  CypherEngine engine;
  auto stmt = engine.Prepare("CREATE (:A {v: $v})");
  ASSERT_TRUE(stmt.ok());
  EXPECT_TRUE(stmt->updating());
  for (int64_t v = 1; v <= 3; ++v) {
    auto r = engine.Execute(*stmt, P({{"v", Value::Int(v)}}));
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->stats.nodes_created, 1);
  }
  auto check = MustRun(engine, "MATCH (a:A) RETURN sum(a.v) AS s");
  EXPECT_EQ(check.table.rows()[0][0].AsInt(), 6);
  // Updating queries never enter the plan cache.
  EXPECT_EQ(engine.plan_cache_size(), 1u);  // only the MATCH above
}

TEST(Prepare, EmptyHandleIsAnError) {
  CypherEngine engine;
  PreparedQuery empty;
  auto r = engine.Execute(empty);
  EXPECT_FALSE(r.ok());
}

TEST(Prepare, RepeatedExecutionOfCachedPlanIsStable) {
  CypherEngine engine;
  MustRun(engine, "CREATE ({v: 1}), ({v: 2}), ({v: 3})");
  auto stmt = engine.Prepare(
      "MATCH (n) WHERE n.v >= $lo RETURN n.v AS v ORDER BY v");
  ASSERT_TRUE(stmt.ok());
  auto first = engine.Execute(*stmt, P({{"lo", Value::Int(2)}}));
  ASSERT_TRUE(first.ok());
  for (int i = 0; i < 3; ++i) {
    auto again = engine.Execute(*stmt, P({{"lo", Value::Int(2)}}));
    ASSERT_TRUE(again.ok());
    EXPECT_TRUE(first->table.SameBag(again->table));
  }
}

}  // namespace
}  // namespace gqlite
