// Per-function tests for the built-in function library ℱ (§4.1 assumes "a
// finite set ℱ of predefined functions"): entity accessors, list/path
// helpers, scalar conversions, math, strings, temporal constructors —
// each with its null-propagation and error behaviour.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

#include "src/eval/evaluator.h"
#include "src/eval/functions.h"
#include "src/frontend/parser.h"

namespace gqlite {
namespace {

class FunctionsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ada_ = g_.CreateNode({"Person", "Pioneer"},
                         {{"name", Value::String("Ada")},
                          {"born", Value::Int(1815)}});
    babbage_ = g_.CreateNode({"Person"},
                             {{"name", Value::String("Charles")}});
    knows_ = g_.CreateRelationship(ada_, babbage_, "KNOWS",
                                   {{"since", Value::Int(1833)}})
                 .value();
    env_.Set("ada", Value::Node(ada_));
    env_.Set("charles", Value::Node(babbage_));
    env_.Set("knows", Value::Relationship(knows_));
    Path p;
    p.nodes = {ada_, babbage_};
    p.rels = {knows_};
    env_.Set("p", Value::MakePath(p));
  }

  Result<Value> Eval(const std::string& text) {
    auto expr = ParseExpression(text);
    if (!expr.ok()) return expr.status();
    EvalContext ctx;
    ctx.graph = &g_;
    static ValueMap no_params;
    ctx.parameters = &no_params;
    return EvaluateExpr(**expr, env_, ctx);
  }

  Value Must(const std::string& text) {
    auto r = Eval(text);
    EXPECT_TRUE(r.ok()) << text << ": " << r.status().ToString();
    return r.ok() ? *r : Value::Null();
  }

  PropertyGraph g_;
  NodeId ada_, babbage_;
  RelId knows_;
  MapEnvironment env_;
};

TEST_F(FunctionsTest, EntityAccessors) {
  EXPECT_EQ(Must("id(ada)").AsInt(), 0);
  EXPECT_EQ(Must("id(knows)").AsInt(), 0);
  Value labels = Must("labels(ada)");
  ASSERT_TRUE(labels.is_list());
  EXPECT_EQ(labels.AsList().size(), 2u);
  EXPECT_EQ(Must("type(knows)").AsString(), "KNOWS");
  EXPECT_EQ(Must("startNode(knows)").AsNode(), ada_);
  EXPECT_EQ(Must("endNode(knows)").AsNode(), babbage_);
  Value props = Must("properties(ada)");
  ASSERT_TRUE(props.is_map());
  EXPECT_EQ(props.AsMap().at("born").AsInt(), 1815);
  Value keys = Must("keys(knows)");
  ASSERT_EQ(keys.AsList().size(), 1u);
  EXPECT_EQ(keys.AsList()[0].AsString(), "since");
  EXPECT_EQ(Must("degree(ada)").AsInt(), 1);
  EXPECT_EQ(Must("outDegree(ada)").AsInt(), 1);
  EXPECT_EQ(Must("inDegree(ada)").AsInt(), 0);
}

TEST_F(FunctionsTest, EntityAccessorNulls) {
  EXPECT_TRUE(Must("id(null)").is_null());
  EXPECT_TRUE(Must("labels(null)").is_null());
  EXPECT_TRUE(Must("type(null)").is_null());
  EXPECT_EQ(Eval("labels(1)").status().code(), StatusCode::kTypeError);
  EXPECT_EQ(Eval("type(ada)").status().code(), StatusCode::kTypeError);
}

TEST_F(FunctionsTest, PathFunctions) {
  EXPECT_EQ(Must("length(p)").AsInt(), 1);
  Value ns = Must("nodes(p)");
  ASSERT_EQ(ns.AsList().size(), 2u);
  EXPECT_EQ(ns.AsList()[0].AsNode(), ada_);
  Value rs = Must("relationships(p)");
  ASSERT_EQ(rs.AsList().size(), 1u);
  EXPECT_EQ(rs.AsList()[0].AsRelationship(), knows_);
}

TEST_F(FunctionsTest, ListFunctions) {
  EXPECT_EQ(Must("size([1, 2, 3])").AsInt(), 3);
  EXPECT_EQ(Must("size('abc')").AsInt(), 3);
  EXPECT_EQ(Must("size({a: 1})").AsInt(), 1);
  EXPECT_EQ(Must("head([7, 8])").AsInt(), 7);
  EXPECT_TRUE(Must("head([])").is_null());
  EXPECT_EQ(Must("last([7, 8])").AsInt(), 8);
  Value t = Must("tail([1, 2, 3])");
  ASSERT_EQ(t.AsList().size(), 2u);
  EXPECT_EQ(t.AsList()[0].AsInt(), 2);
  Value rev = Must("reverse([1, 2, 3])");
  EXPECT_EQ(rev.AsList()[0].AsInt(), 3);
  EXPECT_EQ(Must("reverse('abc')").AsString(), "cba");
}

TEST_F(FunctionsTest, Range) {
  Value r = Must("range(1, 5)");
  ASSERT_EQ(r.AsList().size(), 5u);  // inclusive
  EXPECT_EQ(r.AsList()[4].AsInt(), 5);
  r = Must("range(0, 10, 3)");
  ASSERT_EQ(r.AsList().size(), 4u);  // 0 3 6 9
  r = Must("range(5, 1, -2)");
  ASSERT_EQ(r.AsList().size(), 3u);  // 5 3 1
  EXPECT_EQ(Must("range(5, 1)").AsList().size(), 0u);
  EXPECT_FALSE(Eval("range(1, 5, 0)").ok());
}

TEST_F(FunctionsTest, Coalesce) {
  EXPECT_EQ(Must("coalesce(null, null, 3)").AsInt(), 3);
  EXPECT_EQ(Must("coalesce(1, 2)").AsInt(), 1);
  EXPECT_TRUE(Must("coalesce(null, null)").is_null());
  EXPECT_EQ(Must("coalesce(ada.nope, 'fallback')").AsString(), "fallback");
}

TEST_F(FunctionsTest, Conversions) {
  EXPECT_EQ(Must("toString(42)").AsString(), "42");
  EXPECT_EQ(Must("toString(2.5)").AsString(), "2.5");
  EXPECT_EQ(Must("toString(true)").AsString(), "true");
  EXPECT_EQ(Must("toInteger('42')").AsInt(), 42);
  EXPECT_EQ(Must("toInteger('42.9')").AsInt(), 42);
  EXPECT_EQ(Must("toInteger(3.99)").AsInt(), 3);
  EXPECT_TRUE(Must("toInteger('nope')").is_null());
  EXPECT_DOUBLE_EQ(Must("toFloat('2.5')").AsFloat(), 2.5);
  EXPECT_DOUBLE_EQ(Must("toFloat(2)").AsFloat(), 2.0);
  EXPECT_TRUE(Must("toBoolean('TRUE')").AsBool());
  EXPECT_FALSE(Must("toBoolean('false')").AsBool());
  EXPECT_TRUE(Must("toBoolean('?')").is_null());
  EXPECT_TRUE(Must("toString(null)").is_null());
}

TEST_F(FunctionsTest, Math) {
  EXPECT_EQ(Must("abs(-5)").AsInt(), 5);
  EXPECT_DOUBLE_EQ(Must("abs(-2.5)").AsFloat(), 2.5);
  EXPECT_EQ(Must("sign(-3)").AsInt(), -1);
  EXPECT_EQ(Must("sign(0)").AsInt(), 0);
  EXPECT_DOUBLE_EQ(Must("ceil(1.1)").AsFloat(), 2.0);
  EXPECT_DOUBLE_EQ(Must("floor(1.9)").AsFloat(), 1.0);
  EXPECT_DOUBLE_EQ(Must("round(1.5)").AsFloat(), 2.0);
  EXPECT_DOUBLE_EQ(Must("sqrt(16)").AsFloat(), 4.0);
  EXPECT_DOUBLE_EQ(Must("exp(0)").AsFloat(), 1.0);
  EXPECT_DOUBLE_EQ(Must("log(e())").AsFloat(), 1.0);
  EXPECT_DOUBLE_EQ(Must("log10(100)").AsFloat(), 2.0);
  EXPECT_NEAR(Must("sin(pi() / 2)").AsFloat(), 1.0, 1e-12);
  EXPECT_NEAR(Must("cos(0)").AsFloat(), 1.0, 1e-12);
  EXPECT_NEAR(Must("atan2(1, 1)").AsFloat(), M_PI / 4, 1e-12);
  EXPECT_TRUE(Must("sqrt(null)").is_null());
}

TEST_F(FunctionsTest, Strings) {
  EXPECT_EQ(Must("toUpper('MiXeD')").AsString(), "MIXED");
  EXPECT_EQ(Must("toLower('MiXeD')").AsString(), "mixed");
  EXPECT_EQ(Must("trim('  x  ')").AsString(), "x");
  EXPECT_EQ(Must("lTrim('  x')").AsString(), "x");
  EXPECT_EQ(Must("rTrim('x  ')").AsString(), "x");
  EXPECT_EQ(Must("replace('banana', 'na', 'NA')").AsString(), "baNANA");
  EXPECT_EQ(Must("replace('aaa', 'a', '')").AsString(), "");
  Value parts = Must("split('a,b,,c', ',')");
  ASSERT_EQ(parts.AsList().size(), 4u);
  EXPECT_EQ(parts.AsList()[2].AsString(), "");
  EXPECT_EQ(Must("substring('hello', 1)").AsString(), "ello");
  EXPECT_EQ(Must("substring('hello', 1, 3)").AsString(), "ell");
  EXPECT_EQ(Must("substring('hi', 99)").AsString(), "");
  EXPECT_EQ(Must("left('hello', 2)").AsString(), "he");
  EXPECT_EQ(Must("right('hello', 2)").AsString(), "lo");
  EXPECT_TRUE(Must("toUpper(null)").is_null());
  EXPECT_FALSE(Eval("substring('x', -1)").ok());
}

TEST_F(FunctionsTest, TemporalConstructors) {
  EXPECT_EQ(Must("date('2018-06-10')").AsDate().ToString(), "2018-06-10");
  EXPECT_EQ(Must("localtime('12:31:14.5')").AsLocalTime().ToString(),
            "12:31:14.5");
  EXPECT_EQ(Must("time('10:00:00+01:00')").AsTime().offset_seconds, 3600);
  EXPECT_EQ(Must("localdatetime('2018-06-10T12:00:00')")
                .AsLocalDateTime()
                .ToString(),
            "2018-06-10T12:00:00");
  EXPECT_EQ(Must("datetime('2018-06-10T12:00:00Z')")
                .AsDateTime()
                .offset_seconds,
            0);
  EXPECT_EQ(Must("duration('P2W')").AsDuration().days, 14);
  EXPECT_TRUE(Must("date(null)").is_null());
  EXPECT_FALSE(Eval("date('junk')").ok());
  Value between =
      Must("durationBetween(date('2018-06-10'), date('2018-07-01'))");
  EXPECT_EQ(between.AsDuration().days, 21);
}

TEST_F(FunctionsTest, ArityErrors) {
  EXPECT_FALSE(Eval("id()").ok());
  EXPECT_FALSE(Eval("id(ada, charles)").ok());
  EXPECT_FALSE(Eval("range(1)").ok());
  EXPECT_FALSE(Eval("pi(1)").ok());
}

TEST_F(FunctionsTest, UnknownFunction) {
  auto r = Eval("frobnicate(1)");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kEvaluationError);
  EXPECT_NE(r.status().message().find("frobnicate"), std::string::npos);
}

TEST_F(FunctionsTest, CaseInsensitiveNames) {
  EXPECT_EQ(Must("TOUPPER('x')").AsString(), "X");
  EXPECT_EQ(Must("CoAlEsCe(null, 7)").AsInt(), 7);
}

TEST(IsBuiltin, KnowsItsNames) {
  EXPECT_TRUE(IsBuiltinFunction("labels"));
  EXPECT_TRUE(IsBuiltinFunction("tostring"));
  EXPECT_TRUE(IsBuiltinFunction("durationbetween"));
  EXPECT_FALSE(IsBuiltinFunction("count"));  // aggregate, not scalar
  EXPECT_FALSE(IsBuiltinFunction("frobnicate"));
}

TEST_F(FunctionsTest, StringFunctionsCountCodePointsNotBytes) {
  // 'héllo' is 5 characters in 6 bytes; byte-oriented implementations
  // split the 'é' and emit invalid UTF-8.
  EXPECT_EQ(Must("reverse('héllo')").AsString(), "olléh");
  EXPECT_EQ(Must("size('héllo')").AsInt(), 5);
  EXPECT_EQ(Must("length('héllo')").AsInt(), 5);
  EXPECT_EQ(Must("substring('héllo', 1, 2)").AsString(), "él");
  EXPECT_EQ(Must("substring('héllo', 1)").AsString(), "éllo");
  EXPECT_EQ(Must("substring('héllo', 5)").AsString(), "");
  EXPECT_EQ(Must("left('héllo', 2)").AsString(), "hé");
  EXPECT_EQ(Must("right('héllo', 4)").AsString(), "éllo");
  EXPECT_EQ(Must("right('héllo', 99)").AsString(), "héllo");
  // Multi-byte beyond Latin-1: 3-byte CJK and a 4-byte emoji.
  EXPECT_EQ(Must("size('日本語')").AsInt(), 3);
  EXPECT_EQ(Must("reverse('日本語')").AsString(), "語本日");
  EXPECT_EQ(Must("size('a👍b')").AsInt(), 3);
  EXPECT_EQ(Must("reverse('a👍b')").AsString(), "b👍a");
  EXPECT_EQ(Must("substring('a👍b', 1, 1)").AsString(), "👍");
  // split() on a multi-byte separator keeps pieces intact.
  Value parts = Must("split('héxllo', 'é')");
  ASSERT_TRUE(parts.is_list());
  ASSERT_EQ(parts.AsList().size(), 2u);
  EXPECT_EQ(parts.AsList()[0].AsString(), "h");
  EXPECT_EQ(parts.AsList()[1].AsString(), "xllo");
}

TEST_F(FunctionsTest, UnicodeCaseMapping) {
  // ASCII fast path.
  EXPECT_EQ(Must("toUpper('hello!')").AsString(), "HELLO!");
  EXPECT_EQ(Must("toLower('HeLLo!')").AsString(), "hello!");
  // Latin-1 Supplement.
  EXPECT_EQ(Must("toUpper('café')").AsString(), "CAFÉ");
  EXPECT_EQ(Must("toLower('ÀÉÎÕÜ')").AsString(), "àéîõü");
  EXPECT_EQ(Must("toUpper('àéîõü')").AsString(), "ÀÉÎÕÜ");
  // × and ÷ sit inside the letter ranges but are not letters.
  EXPECT_EQ(Must("toUpper('a×b÷c')").AsString(), "A×B÷C");
  // ÿ's uppercase lives in Latin Extended-A.
  EXPECT_EQ(Must("toUpper('ÿ')").AsString(), "Ÿ");
  EXPECT_EQ(Must("toLower('Ÿ')").AsString(), "ÿ");
  // Latin Extended-A pairs (even/upper and odd/upper subranges).
  EXPECT_EQ(Must("toUpper('āćłńšž')").AsString(), "ĀĆŁŃŠŽ");
  EXPECT_EQ(Must("toLower('ĀĆŁŃŠŽ')").AsString(), "āćłńšž");
  // Asymmetric exceptions: dotted/dotless i, long s; ß has no simple
  // uppercase and passes through.
  EXPECT_EQ(Must("toLower('İ')").AsString(), "i");
  EXPECT_EQ(Must("toUpper('ı')").AsString(), "I");
  EXPECT_EQ(Must("toUpper('ſ')").AsString(), "S");
  EXPECT_EQ(Must("toUpper('straße')").AsString(), "STRAßE");
  // Greek, including final sigma and tonos/dialytika accents.
  EXPECT_EQ(Must("toUpper('αβγδς')").AsString(), "ΑΒΓΔΣ");
  EXPECT_EQ(Must("toLower('ΑΒΓΔΣ')").AsString(), "αβγδσ");
  EXPECT_EQ(Must("toUpper('αέρας')").AsString(), "ΑΈΡΑΣ");
  EXPECT_EQ(Must("toLower('ΑΈΡΙΟ')").AsString(), "αέριο");
  EXPECT_EQ(Must("toUpper('ήίόύώϊ')").AsString(), "ΉΊΌΎΏΪ");
  EXPECT_EQ(Must("toLower('ΉΊΌΎΏΪ')").AsString(), "ήίόύώϊ");
  // Cyrillic (basic + Ё).
  EXPECT_EQ(Must("toUpper('привёт')").AsString(), "ПРИВЁТ");
  EXPECT_EQ(Must("toLower('ПРИВЁТ')").AsString(), "привёт");
  // Out-of-table code points pass through unchanged.
  EXPECT_EQ(Must("toUpper('日本語a👍')").AsString(), "日本語A👍");
}

TEST_F(FunctionsTest, ToIntegerTrimsWhitespace) {
  EXPECT_EQ(Must("toInteger('  42  ')").AsInt(), 42);
  EXPECT_EQ(Must("toInteger('\\t-7\\n')").AsInt(), -7);
  EXPECT_EQ(Must("toInteger(' 42.9 ')").AsInt(), 42);
  EXPECT_TRUE(Must("toInteger('   ')").is_null());
  EXPECT_TRUE(Must("toInteger('4 2')").is_null());
  // strtod-isms Neo4j rejects: hex and lowercase inf/nan...
  EXPECT_TRUE(Must("toInteger(' 0x1A ')").is_null());
  EXPECT_TRUE(Must("toFloat('inf')").is_null());
  EXPECT_TRUE(Must("toFloat('nan')").is_null());
  // ...but the exact-case Java forms convert (Double.parseDouble).
  EXPECT_TRUE(std::isinf(Must("toFloat('Infinity')").AsFloat()));
  EXPECT_LT(Must("toFloat('-Infinity')").AsFloat(), 0);
  EXPECT_TRUE(std::isnan(Must("toFloat('NaN')").AsFloat()));
  EXPECT_TRUE(Must("toInteger('Infinity')").is_null());
  EXPECT_EQ(Must("toInteger('+5')").AsInt(), 5);
  EXPECT_EQ(Must("toInteger(' 6e2 ')").AsInt(), 600);
  EXPECT_DOUBLE_EQ(Must("toFloat(' 3.5 ')").AsFloat(), 3.5);
  // Full 64-bit precision (a double-roundtrip would land on ...5808).
  EXPECT_EQ(Must("toInteger('9223372036854775807')").AsInt(),
            INT64_MAX);
}

TEST_F(FunctionsTest, AbsAndToIntegerOverflow) {
  EXPECT_EQ(Must("abs(-9223372036854775807)").AsInt(), INT64_MAX);
  auto r = Eval("abs(-9223372036854775807 - 1)");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kEvaluationError);
  EXPECT_NE(r.status().message().find("integer overflow"), std::string::npos);
  // toInteger on a float that cannot fit raises; huge float strings are
  // a conversion failure → null.
  EXPECT_FALSE(Eval("toInteger(1e300)").ok());
  EXPECT_TRUE(Must("toInteger('1e300')").is_null());
}

}  // namespace
}  // namespace gqlite
