// Graph serialization tests: DumpToCypher must produce a script that,
// executed on a fresh engine, rebuilds an equivalent graph — a round-trip
// through the whole stack (store → literal rendering → lexer → parser →
// analyzer → update executor → store).

#include <gtest/gtest.h>

#include "src/core/engine.h"
#include "src/graph/graph_io.h"
#include "src/workload/generators.h"
#include "src/workload/paper_graphs.h"

namespace gqlite {
namespace {

/// Structural equivalence good enough for round-trip checks: counts per
/// label/type, plus every query in `probes` returning the same bag.
void ExpectEquivalent(GraphPtr a, GraphPtr b,
                      const std::vector<std::string>& probes) {
  ASSERT_EQ(a->NumNodes(), b->NumNodes());
  ASSERT_EQ(a->NumRels(), b->NumRels());
  for (const std::string& q : probes) {
    CypherEngine ea, eb;
    ea.RegisterGraph("g", a);
    eb.RegisterGraph("g", b);
    auto ra = ea.Execute("FROM GRAPH g " + q);
    auto rb = eb.Execute("FROM GRAPH g " + q);
    ASSERT_TRUE(ra.ok()) << q << ra.status().ToString();
    ASSERT_TRUE(rb.ok()) << q << rb.status().ToString();
    EXPECT_TRUE(ra->table.SameBag(rb->table))
        << q << "\noriginal:\n" << ra->table.ToString() << "reloaded:\n"
        << rb->table.ToString();
  }
}

GraphPtr Reload(const PropertyGraph& g) {
  std::string script = DumpToCypher(g);
  CypherEngine engine;
  if (!script.empty()) {
    auto r = engine.Execute(script);
    EXPECT_TRUE(r.ok()) << r.status().ToString() << "\nscript:\n" << script;
  }
  return engine.graph_ptr();
}

TEST(GraphIo, EmptyGraph) {
  PropertyGraph g;
  EXPECT_EQ(DumpToCypher(g), "");
}

TEST(GraphIo, PaperFigure1RoundTrip) {
  workload::PaperFigure1 fig = workload::MakePaperFigure1Graph();
  GraphPtr reloaded = Reload(*fig.graph);
  ExpectEquivalent(
      fig.graph, reloaded,
      {"MATCH (r:Researcher) RETURN r.name ORDER BY r.name",
       "MATCH (p:Publication)<-[:CITES]-(q) RETURN p.acmid, count(q) "
       "ORDER BY p.acmid",
       "MATCH (r)-[:SUPERVISES]->(s) RETURN r.name, s.name "
       "ORDER BY r.name, s.name",
       "MATCH (a)-[:CITES*]->(b) RETURN count(*)"});
}

TEST(GraphIo, EscapingAndValueKinds) {
  PropertyGraph g;
  g.CreateNode({"Weird Label", "Ok"},
               {{"s", Value::String("it's a \\ 'test'\nline")},
                {"i", Value::Int(-42)},
                {"f", Value::Float(2.5)},
                {"b", Value::Bool(true)},
                {"list", Value::MakeList({Value::Int(1),
                                          Value::String("x")})},
                {"map", Value::MakeMap({{"inner key", Value::Int(1)}})},
                {"d", Value::Temporal(Date::FromYmd(2018, 6, 10))},
                {"dur", Value::Temporal(Duration::Make(14, 3, 60, 0))}});
  GraphPtr reloaded = Reload(g);
  ASSERT_EQ(reloaded->NumNodes(), 1u);
  NodeId n{0};
  EXPECT_EQ(reloaded->NodeProperty(n, "s").AsString(),
            "it's a \\ 'test'\nline");
  EXPECT_EQ(reloaded->NodeProperty(n, "i").AsInt(), -42);
  EXPECT_DOUBLE_EQ(reloaded->NodeProperty(n, "f").AsFloat(), 2.5);
  EXPECT_TRUE(reloaded->NodeProperty(n, "b").AsBool());
  EXPECT_EQ(reloaded->NodeProperty(n, "list").AsList().size(), 2u);
  EXPECT_EQ(reloaded->NodeProperty(n, "map").AsMap().at("inner key").AsInt(),
            1);
  EXPECT_EQ(reloaded->NodeProperty(n, "d").AsDate().ToString(), "2018-06-10");
  EXPECT_EQ(reloaded->NodeProperty(n, "dur").AsDuration().months, 14);
  EXPECT_TRUE(reloaded->NodeHasLabel(n, "Weird Label"));
}

TEST(GraphIo, RandomGraphRoundTrip) {
  GraphPtr g = workload::MakeRandomGraph(40, 80, 2024);
  GraphPtr reloaded = Reload(*g);
  ExpectEquivalent(g, reloaded,
                   {"MATCH (a:A) RETURN count(*)",
                    "MATCH ()-[r:T]->() RETURN r.w, count(*) ORDER BY r.w",
                    "MATCH (a)-[:T]->(b)-[:U]->(c) RETURN count(*)",
                    "MATCH (a) RETURN a.v, count(*) ORDER BY a.v"});
}

TEST(GraphIo, DeletedEntitiesAreNotDumped) {
  PropertyGraph g;
  NodeId a = g.CreateNode({"Keep"});
  NodeId b = g.CreateNode({"Drop"});
  g.CreateRelationship(a, b, "T").value();
  ASSERT_TRUE(g.DetachDeleteNode(b).ok());
  GraphPtr reloaded = Reload(g);
  EXPECT_EQ(reloaded->NumNodes(), 1u);
  EXPECT_EQ(reloaded->NumRels(), 0u);
  EXPECT_EQ(reloaded->NodesWithLabel("Drop").size(), 0u);
}

TEST(GraphIo, EntityValuesRejected) {
  auto r = ValueToCypherLiteral(Value::Node(NodeId{1}));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace gqlite
