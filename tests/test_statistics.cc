#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/frontend/ast.h"
#include "src/graph/graph_statistics.h"
#include "src/graph/property_graph.h"
#include "src/plan/cost_model.h"

namespace gqlite {
namespace {

ast::RelPattern Rel(std::string type,
                    ast::Direction dir = ast::Direction::kRight) {
  ast::RelPattern rp;
  rp.direction = dir;
  if (!type.empty()) rp.types.push_back(std::move(type));
  return rp;
}

ast::RelPattern VarRel(std::string type, std::optional<int64_t> min,
                       std::optional<int64_t> max) {
  ast::RelPattern rp = Rel(std::move(type));
  rp.length = ast::VarLength{min, max};
  return rp;
}

TEST(GraphStatistics, EmptyGraphIsAllZeros) {
  PropertyGraph g;
  GraphStatistics stats(g);
  EXPECT_EQ(stats.NodeCount(), 0.0);
  EXPECT_EQ(stats.RelCount(), 0.0);
  EXPECT_EQ(stats.NodesWithLabel("Person"), 0.0);
  EXPECT_EQ(stats.RelsWithType("KNOWS"), 0.0);
  EXPECT_EQ(stats.OutDegree("KNOWS"), 0.0);
  EXPECT_EQ(stats.InDegree("KNOWS", "Person"), 0.0);
  EXPECT_EQ(stats.CondOutDegree("KNOWS"), 0.0);
  EXPECT_EQ(stats.MaxOutDegree("KNOWS"), 0.0);
  EXPECT_EQ(stats.NodePropertyNdv("age"), 0.0);

  // The cost model must not divide by zero on an empty graph either.
  CostModel cost(stats);
  NodeConstraint nc;
  nc.labels.push_back("Person");
  EXPECT_GE(cost.ScanCardinality(nc), 0.0);
  EXPECT_GE(cost.ExpandFactor(Rel("KNOWS"), /*reversed=*/false), 0.0);
}

TEST(GraphStatistics, UnknownLabelAndTypeAreZero) {
  PropertyGraph g;
  NodeId a = g.CreateNode({"A"});
  NodeId b = g.CreateNode({"B"});
  ASSERT_TRUE(g.CreateRelationship(a, b, "R", {}).ok());
  GraphStatistics stats(g);
  EXPECT_EQ(stats.NodesWithLabel("Nope"), 0.0);
  EXPECT_EQ(stats.RelsWithType("NOPE"), 0.0);
  EXPECT_EQ(stats.OutDegree("NOPE"), 0.0);
  EXPECT_EQ(stats.OutDegree("R", "Nope"), 0.0);
  EXPECT_EQ(stats.InDegree("NOPE", "B"), 0.0);
  EXPECT_EQ(stats.MaxInDegree("NOPE"), 0.0);
}

TEST(GraphStatistics, DirectionalAsymmetryOnHubStar) {
  // One Hub with fan-out 20 to Leaf nodes: the OUT fan from Hub is 20,
  // the IN fan into Hub is 0, and leaves see the mirror image.
  PropertyGraph g;
  NodeId hub = g.CreateNode({"Hub"});
  for (int i = 0; i < 20; ++i) {
    NodeId leaf = g.CreateNode({"Leaf"});
    ASSERT_TRUE(g.CreateRelationship(hub, leaf, "R", {}).ok());
  }
  GraphStatistics stats(g);
  EXPECT_DOUBLE_EQ(stats.OutDegree("R", "Hub"), 20.0);
  EXPECT_DOUBLE_EQ(stats.InDegree("R", "Hub"), 0.0);
  EXPECT_DOUBLE_EQ(stats.OutDegree("R", "Leaf"), 0.0);
  EXPECT_DOUBLE_EQ(stats.InDegree("R", "Leaf"), 1.0);
  // Unconditioned fans average over ALL nodes (21 of them).
  EXPECT_NEAR(stats.OutDegree("R"), 20.0 / 21.0, 1e-9);
  EXPECT_NEAR(stats.InDegree("R"), 20.0 / 21.0, 1e-9);
  // Conditional fans divide by nodes that actually have such a rel.
  EXPECT_DOUBLE_EQ(stats.DistinctSources("R"), 1.0);
  EXPECT_DOUBLE_EQ(stats.DistinctTargets("R"), 20.0);
  EXPECT_DOUBLE_EQ(stats.CondOutDegree("R"), 20.0);
  EXPECT_DOUBLE_EQ(stats.CondInDegree("R"), 1.0);
  // Histogram upper bound: 20 lands in bucket 4 -> bound 2^5 - 1 = 31.
  EXPECT_GE(stats.MaxOutDegree("R"), 20.0);
  EXPECT_LE(stats.MaxOutDegree("R"), 31.0);
  EXPECT_LE(stats.MaxInDegree("R"), 1.0);
}

TEST(GraphStatistics, DegreeHistogramDeleteRoundTrip) {
  PropertyGraph g;
  NodeId a = g.CreateNode();
  NodeId b = g.CreateNode();
  std::vector<RelId> rels;
  for (int i = 0; i < 5; ++i) {
    auto r = g.CreateRelationship(a, b, "R", {});
    ASSERT_TRUE(r.ok());
    rels.push_back(*r);
  }
  SymbolId type = g.LookupType("R");
  const auto* ds = g.DegreeStatsFor(type);
  ASSERT_NE(ds, nullptr);
  EXPECT_EQ(ds->distinct_sources, 1u);
  EXPECT_EQ(ds->distinct_targets, 1u);
  // Degree 5 -> log2 bucket 2.
  EXPECT_EQ(ds->out_hist[2], 1u);
  EXPECT_EQ(ds->in_hist[2], 1u);

  // Delete down to one rel: the node moves to bucket 0.
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(g.DeleteRelationship(rels[i]).ok());
  ds = g.DegreeStatsFor(type);
  ASSERT_NE(ds, nullptr);
  EXPECT_EQ(ds->out_hist[2], 0u);
  EXPECT_EQ(ds->out_hist[0], 1u);
  EXPECT_EQ(ds->distinct_sources, 1u);

  // Delete the last one: everything drains back to zero.
  ASSERT_TRUE(g.DeleteRelationship(rels[4]).ok());
  ds = g.DegreeStatsFor(type);
  ASSERT_NE(ds, nullptr);
  EXPECT_EQ(ds->distinct_sources, 0u);
  EXPECT_EQ(ds->distinct_targets, 0u);
  for (size_t i = 0; i < PropertyGraph::kDegreeBuckets; ++i) {
    EXPECT_EQ(ds->out_hist[i], 0u) << "bucket " << i;
    EXPECT_EQ(ds->in_hist[i], 0u) << "bucket " << i;
  }
  GraphStatistics stats(g);
  EXPECT_EQ(stats.OutDegree("R"), 0.0);
}

TEST(GraphStatistics, NdvExactBelowSketchCapacity) {
  // The KMV sketch keeps 64 minima, so <= 64 distinct values are exact.
  PropertyGraph g;
  for (int i = 0; i < 200; ++i) {
    // 40 distinct values, each written five times.
    g.CreateNode({}, {{"bucket", Value::Int(i % 40)}});
  }
  GraphStatistics stats(g);
  EXPECT_DOUBLE_EQ(stats.NodePropertyNdv("bucket"), 40.0);
  EXPECT_EQ(stats.RelPropertyNdv("bucket"), 0.0);  // node key only
}

TEST(GraphStatistics, NdvEstimateWithinFactorOfTwo) {
  PropertyGraph g;
  for (int i = 0; i < 1000; ++i) {
    g.CreateNode({}, {{"id", Value::Int(i)}});
  }
  GraphStatistics stats(g);
  double ndv = stats.NodePropertyNdv("id");
  EXPECT_GE(ndv, 500.0);
  EXPECT_LE(ndv, 2000.0);
}

TEST(CostModel, VarLengthHonorsExplicitMax) {
  // Chain a->b->c->... with fan exactly 1: path count through *1..k is k.
  PropertyGraph g;
  NodeId prev = g.CreateNode();
  for (int i = 0; i < 40; ++i) {
    NodeId next = g.CreateNode();
    ASSERT_TRUE(g.CreateRelationship(prev, next, "R", {}).ok());
    prev = next;
  }
  GraphStatistics stats(g);
  CostModel cost(stats);
  double one = cost.ExpandFactor(VarRel("R", 1, 1), false);
  double three = cost.ExpandFactor(VarRel("R", 1, 3), false);
  double five = cost.ExpandFactor(VarRel("R", 1, 5), false);
  // More allowed levels -> strictly more estimated paths.
  EXPECT_GT(three, one);
  EXPECT_GT(five, three);
  // With fan ~1 the estimate stays around the level count, far from the
  // saturation cap: the explicit max is honored, not replaced by a
  // "whole graph" bound.
  EXPECT_LT(five, 50.0);
}

TEST(CostModel, UnboundedVarLengthUsesFiniteHorizon) {
  PropertyGraph g;
  NodeId prev = g.CreateNode();
  for (int i = 0; i < 40; ++i) {
    NodeId next = g.CreateNode();
    ASSERT_TRUE(g.CreateRelationship(prev, next, "R", {}).ok());
    prev = next;
  }
  GraphStatistics stats(g);
  CostModel cost(stats);
  // Unbounded *2.. estimates over a lo+8 horizon: finite, and at least
  // as large as the explicit *2..10 estimate it mirrors.
  double unbounded = cost.ExpandFactor(VarRel("R", 2, std::nullopt), false);
  double explicit10 = cost.ExpandFactor(VarRel("R", 2, 10), false);
  EXPECT_GT(unbounded, 0.0);
  EXPECT_GE(unbounded, explicit10 * 0.999);
  EXPECT_LT(unbounded, 1e15);
}

TEST(CostModel, ExpandFactorIsDirectional) {
  // 10 hubs each fanning out to 10 leaves: following -[:R]-> forward
  // from a Hub is fan 10; following it reversed from a Hub is fan 0.
  PropertyGraph g;
  for (int h = 0; h < 10; ++h) {
    NodeId hub = g.CreateNode({"Hub"});
    for (int i = 0; i < 10; ++i) {
      NodeId leaf = g.CreateNode({"Leaf"});
      ASSERT_TRUE(g.CreateRelationship(hub, leaf, "R", {}).ok());
    }
  }
  GraphStatistics stats(g);
  CostModel cost(stats);
  NodeConstraint hub;
  hub.labels.push_back("Hub");
  NodeConstraint leaf;
  leaf.labels.push_back("Leaf");
  ast::RelPattern rp = Rel("R");
  EXPECT_DOUBLE_EQ(cost.ExpandFactor(rp, /*reversed=*/false, hub), 10.0);
  // Reversed from a Hub the true fan is 0; the model floors it at 0.01
  // so downstream estimates never collapse to exactly zero.
  EXPECT_LE(cost.ExpandFactor(rp, /*reversed=*/true, hub), 0.01);
  EXPECT_DOUBLE_EQ(cost.ExpandFactor(rp, /*reversed=*/true, leaf), 1.0);
  // A <-[:R]- hop entered from the left follows IN-edges: reversed=false
  // on a kLeft pattern matches the reversed=true forward fan.
  ast::RelPattern back = Rel("R", ast::Direction::kLeft);
  EXPECT_DOUBLE_EQ(cost.ExpandFactor(back, /*reversed=*/false, hub),
                   cost.ExpandFactor(rp, /*reversed=*/true, hub));
}

TEST(CostModel, SelectivityUnifiesLabelsAndEqProps) {
  PropertyGraph g;
  for (int i = 0; i < 100; ++i) {
    std::vector<std::string> labels;
    if (i < 20) labels.push_back("A");
    g.CreateNode(labels, {{"k", Value::Int(i % 10)}});
  }
  GraphStatistics stats(g);
  CostModel cost(stats);
  NodeConstraint nc;
  nc.labels.push_back("A");
  EXPECT_NEAR(cost.ScanCardinality(nc), 20.0, 1e-6);
  // Adding an equality on k (NDV 10, exact under the sketch capacity)
  // multiplies by 1/10.
  nc.eq_props.push_back("k");
  EXPECT_NEAR(cost.ScanCardinality(nc), 2.0, 1e-6);
  // Unknown property key falls back to the 0.1 default selectivity.
  nc.eq_props.push_back("unknown");
  EXPECT_NEAR(cost.ScanCardinality(nc), 0.2, 1e-6);
}

}  // namespace
}  // namespace gqlite
