// Direct tests of the pattern matcher — match(π̄, G, u) per §4.2: bound
// variables, directions, self-loops, zero-length hops, property patterns,
// tuple-wide relationship isomorphism, morphism modes, early-exit
// existential matching.

#include <gtest/gtest.h>

#include "src/frontend/parser.h"
#include "src/pattern/matcher.h"
#include "src/workload/generators.h"
#include "src/workload/paper_graphs.h"

namespace gqlite {
namespace {

/// Parses the pattern of "MATCH <pattern> RETURN 1" and matches it.
struct MatchResult {
  std::vector<std::string> columns;
  std::vector<BindingRow> rows;
};

Result<MatchResult> Match(const PropertyGraph& g, const std::string& pattern,
                          const MapEnvironment& env = {},
                          MatchOptions opts = {}) {
  GQL_ASSIGN_OR_RETURN(ast::Query q,
                       ParseQuery("MATCH " + pattern + " RETURN 1"));
  const auto& m = static_cast<const ast::MatchClause&>(
      *q.parts[0].clauses[0]);
  MatchResult out;
  out.columns = NewPatternColumns(m.pattern, env);
  EvalContext ctx;
  ctx.graph = &g;
  static ValueMap no_params;
  ctx.parameters = &no_params;
  Status st = MatchPattern(m.pattern, g, env, ctx, opts, out.columns,
                           [&](const BindingRow& row) -> Result<bool> {
                             out.rows.push_back(row);
                             return true;
                           });
  GQL_RETURN_IF_ERROR(st);
  return out;
}

size_t CountMatches(const PropertyGraph& g, const std::string& pattern,
                    const MapEnvironment& env = {}, MatchOptions opts = {}) {
  auto r = Match(g, pattern, env, opts);
  EXPECT_TRUE(r.ok()) << pattern << ": " << r.status().ToString();
  return r.ok() ? r->rows.size() : 0;
}

TEST(Matcher, EmptyGraphNoMatches) {
  PropertyGraph g;
  EXPECT_EQ(CountMatches(g, "(a)"), 0u);
  EXPECT_EQ(CountMatches(g, "(a)-[r]->(b)"), 0u);
}

TEST(Matcher, SingleNodePatterns) {
  PropertyGraph g;
  g.CreateNode({"A"});
  g.CreateNode({"A", "B"});
  g.CreateNode({"B"});
  EXPECT_EQ(CountMatches(g, "(x)"), 3u);
  EXPECT_EQ(CountMatches(g, "(x:A)"), 2u);
  EXPECT_EQ(CountMatches(g, "(x:A:B)"), 1u);
  EXPECT_EQ(CountMatches(g, "(x:C)"), 0u);
  EXPECT_EQ(CountMatches(g, "()"), 3u);  // anonymous still enumerates
}

TEST(Matcher, PropertyConstraints) {
  PropertyGraph g;
  g.CreateNode({}, {{"v", Value::Int(1)}});
  g.CreateNode({}, {{"v", Value::Int(2)}});
  g.CreateNode({}, {{"w", Value::Int(1)}});
  EXPECT_EQ(CountMatches(g, "(x {v: 1})"), 1u);
  EXPECT_EQ(CountMatches(g, "(x {v: 9})"), 0u);
  // Absent property is null: ι(n,k) = P(k) must be TRUE, null fails.
  EXPECT_EQ(CountMatches(g, "(x {missing: 1})"), 0u);
}

TEST(Matcher, PropertyExpressionsSeeOuterBindings) {
  PropertyGraph g;
  g.CreateNode({}, {{"v", Value::Int(7)}});
  MapEnvironment env;
  env.Set("target", Value::Int(7));
  EXPECT_EQ(CountMatches(g, "(x {v: target})", env), 1u);
  env.Set("target", Value::Int(8));
  EXPECT_EQ(CountMatches(g, "(x {v: target})", env), 0u);
}

TEST(Matcher, Directions) {
  PropertyGraph g;
  NodeId a = g.CreateNode();
  NodeId b = g.CreateNode();
  g.CreateRelationship(a, b, "T").value();
  MapEnvironment env;
  env.Set("a", Value::Node(a));
  EXPECT_EQ(CountMatches(g, "(a)-[r]->(x)", env), 1u);
  EXPECT_EQ(CountMatches(g, "(a)<-[r]-(x)", env), 0u);
  EXPECT_EQ(CountMatches(g, "(a)-[r]-(x)", env), 1u);
  MapEnvironment envb;
  envb.Set("b", Value::Node(b));
  EXPECT_EQ(CountMatches(g, "(b)<-[r]-(x)", envb), 1u);
}

TEST(Matcher, SelfLoopCountedOncePerDirection) {
  PropertyGraph g;
  NodeId a = g.CreateNode();
  g.CreateRelationship(a, a, "LOOP").value();
  EXPECT_EQ(CountMatches(g, "(x)-[r]->(y)"), 1u);
  EXPECT_EQ(CountMatches(g, "(x)<-[r]-(y)"), 1u);
  EXPECT_EQ(CountMatches(g, "(x)-[r]-(y)"), 1u);  // undirected: still once
  EXPECT_EQ(CountMatches(g, "(x)-[r]->(x)"), 1u);
}

TEST(Matcher, BoundNodeRestrictsStart) {
  workload::PaperFigure4 f = workload::MakePaperFigure4Graph();
  MapEnvironment env;
  env.Set("x", Value::Node(f.n[1]));
  auto r = Match(*f.graph, "(x)-[:KNOWS]->(y)", env);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->columns, std::vector<std::string>{"y"});
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][0].AsNode(), f.n[2]);
}

TEST(Matcher, BoundNullYieldsNoMatch) {
  workload::PaperFigure4 f = workload::MakePaperFigure4Graph();
  MapEnvironment env;
  env.Set("x", Value::Null());
  EXPECT_EQ(CountMatches(*f.graph, "(x)-[:KNOWS]->(y)", env), 0u);
}

TEST(Matcher, BoundRelationshipMustAgree) {
  workload::PaperFigure4 f = workload::MakePaperFigure4Graph();
  MapEnvironment env;
  env.Set("r", Value::Relationship(f.r[2]));
  auto m = Match(*f.graph, "(a)-[r]->(b)", env);
  ASSERT_TRUE(m.ok());
  ASSERT_EQ(m->rows.size(), 1u);
  // Columns are free(π) − dom(u) = {a, b}.
  EXPECT_EQ(m->columns, (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(m->rows[0][0].AsNode(), f.n[2]);
  EXPECT_EQ(m->rows[0][1].AsNode(), f.n[3]);
}

TEST(Matcher, SharedVariableJoinsWithinPattern) {
  // (a)-[]->(b)-[]->(a): closes a 2-cycle.
  PropertyGraph g;
  NodeId a = g.CreateNode();
  NodeId b = g.CreateNode();
  g.CreateRelationship(a, b, "T").value();
  g.CreateRelationship(b, a, "T").value();
  EXPECT_EQ(CountMatches(g, "(a)-[]->(b)-[]->(a)"), 2u);  // from a and from b
  // Repeated rigid rel variable: both hops must bind the same rel — never
  // possible here because the two hops need distinct endpoints order.
  EXPECT_EQ(CountMatches(g, "(a)-[r]->(b)<-[r]-(a)"), 0u);
}

TEST(Matcher, TupleRelationshipIsomorphism) {
  PropertyGraph g;
  NodeId a = g.CreateNode();
  NodeId b = g.CreateNode();
  g.CreateRelationship(a, b, "T").value();
  // One relationship cannot serve both tuple entries…
  EXPECT_EQ(CountMatches(g, "(p)-[x]->(q), (s)-[y]->(t)"), 0u);
  // …but two can, in both assignments.
  g.CreateRelationship(a, b, "T").value();
  EXPECT_EQ(CountMatches(g, "(p)-[x]->(q), (s)-[y]->(t)"), 2u);
}

TEST(Matcher, ZeroLengthBindsEndpointsTogether) {
  PropertyGraph g;
  NodeId a = g.CreateNode({"A"});
  g.CreateNode({"B"});
  auto m = Match(g, "(x:A)-[rs*0..0]->(y)");
  ASSERT_TRUE(m.ok());
  ASSERT_EQ(m->rows.size(), 1u);
  // x = y = a; rs = empty list (the m = 0 case of §4.2).
  int xi = -1, yi = -1, ri = -1;
  for (size_t i = 0; i < m->columns.size(); ++i) {
    if (m->columns[i] == "x") xi = static_cast<int>(i);
    if (m->columns[i] == "y") yi = static_cast<int>(i);
    if (m->columns[i] == "rs") ri = static_cast<int>(i);
  }
  ASSERT_GE(xi, 0);
  ASSERT_GE(yi, 0);
  ASSERT_GE(ri, 0);
  EXPECT_EQ(m->rows[0][xi].AsNode(), a);
  EXPECT_EQ(m->rows[0][yi].AsNode(), a);
  EXPECT_TRUE(m->rows[0][ri].is_list());
  EXPECT_TRUE(m->rows[0][ri].AsList().empty());
}

TEST(Matcher, ZeroLengthRespectsTargetConstraints) {
  PropertyGraph g;
  g.CreateNode({"A"});
  // (x:A)-[*0..]->(y:B): zero hops requires y's labels at x — fails.
  EXPECT_EQ(CountMatches(g, "(x:A)-[*0..1]->(y:B)"), 0u);
}

TEST(Matcher, VarLengthRangeSemantics) {
  GraphPtr chain = workload::MakeChain(5);  // 4 rels
  // *d means exactly d (§4.2: I = (d, d)).
  EXPECT_EQ(CountMatches(*chain, "(a)-[:NEXT*2]->(b)"), 3u);
  EXPECT_EQ(CountMatches(*chain, "(a)-[:NEXT*1..2]->(b)"), 7u);
  EXPECT_EQ(CountMatches(*chain, "(a)-[:NEXT*..2]->(b)"), 7u);   // lo = 1
  EXPECT_EQ(CountMatches(*chain, "(a)-[:NEXT*2..]->(b)"), 6u);   // 3+2+1
  EXPECT_EQ(CountMatches(*chain, "(a)-[:NEXT*]->(b)"), 10u);     // 4+3+2+1
  EXPECT_EQ(CountMatches(*chain, "(a)-[:NEXT*0..]->(b)"), 15u);  // + 5 zero
}

TEST(Matcher, VarLengthBindsRelationshipList) {
  GraphPtr chain = workload::MakeChain(3);
  auto m = Match(*chain, "(a {idx: 0})-[rs:NEXT*2]->(b)");
  ASSERT_TRUE(m.ok());
  ASSERT_EQ(m->rows.size(), 1u);
  int ri = -1;
  for (size_t i = 0; i < m->columns.size(); ++i) {
    if (m->columns[i] == "rs") ri = static_cast<int>(i);
  }
  ASSERT_GE(ri, 0);
  ASSERT_TRUE(m->rows[0][ri].is_list());
  EXPECT_EQ(m->rows[0][ri].AsList().size(), 2u);
}

TEST(Matcher, NamedPathBinding) {
  GraphPtr chain = workload::MakeChain(3);
  auto m = Match(*chain, "p = (a {idx: 0})-[:NEXT*2]->(b)");
  ASSERT_TRUE(m.ok());
  ASSERT_EQ(m->rows.size(), 1u);
  int pi = -1;
  for (size_t i = 0; i < m->columns.size(); ++i) {
    if (m->columns[i] == "p") pi = static_cast<int>(i);
  }
  ASSERT_GE(pi, 0);
  ASSERT_TRUE(m->rows[0][pi].is_path());
  const Path& p = m->rows[0][pi].AsPath();
  EXPECT_EQ(p.nodes.size(), 3u);
  EXPECT_EQ(p.rels.size(), 2u);
}

TEST(Matcher, RelPropertyConstraints) {
  PropertyGraph g;
  NodeId a = g.CreateNode();
  NodeId b = g.CreateNode();
  g.CreateRelationship(a, b, "T", {{"w", Value::Int(1)}}).value();
  g.CreateRelationship(a, b, "T", {{"w", Value::Int(2)}}).value();
  EXPECT_EQ(CountMatches(g, "(x)-[r:T {w: 1}]->(y)"), 1u);
  EXPECT_EQ(CountMatches(g, "(x)-[r:T {w: 3}]->(y)"), 0u);
  // Var-length: every step must satisfy the property map.
  NodeId c = g.CreateNode();
  g.CreateRelationship(b, c, "T", {{"w", Value::Int(1)}}).value();
  EXPECT_EQ(CountMatches(g, "(x)-[rs:T*2 {w: 1}]->(y)"), 1u);
  EXPECT_EQ(CountMatches(g, "(x)-[rs:T*2 {w: 2}]->(y)"), 0u);
}

TEST(Matcher, TypeDisjunction) {
  PropertyGraph g;
  NodeId a = g.CreateNode();
  NodeId b = g.CreateNode();
  g.CreateRelationship(a, b, "T").value();
  g.CreateRelationship(a, b, "U").value();
  g.CreateRelationship(a, b, "V").value();
  EXPECT_EQ(CountMatches(g, "(x)-[r:T|U]->(y)"), 2u);
  EXPECT_EQ(CountMatches(g, "(x)-[r:T|U|V]->(y)"), 3u);
}

TEST(Matcher, NodeIsomorphismForbidsRepeatedNodes) {
  GraphPtr cycle = workload::MakeCycle(3);
  MatchOptions node_iso;
  node_iso.morphism = Morphism::kNodeIsomorphism;
  // A 3-cycle closes only by repeating the start node: edge-iso allows,
  // node-iso forbids.
  EXPECT_EQ(CountMatches(*cycle, "(a)-[*3]->(a)"), 3u);
  EXPECT_EQ(CountMatches(*cycle, "(a)-[*3]->(a)", {}, node_iso), 0u);
  // Open paths are unaffected.
  EXPECT_EQ(CountMatches(*cycle, "(a)-[*2]->(b)", {}, node_iso), 3u);
}

TEST(Matcher, HomomorphismAllowsRelReuse) {
  GraphPtr chain = workload::MakeChain(2);  // one rel
  MatchOptions hom;
  hom.morphism = Morphism::kHomomorphism;
  hom.max_var_length = 4;
  EXPECT_EQ(CountMatches(*chain, "(a)-[r1]->(b), (c)-[r2]->(d)"), 0u);
  EXPECT_EQ(CountMatches(*chain, "(a)-[r1]->(b), (c)-[r2]->(d)", {}, hom),
            1u);
}

TEST(Matcher, ExistsMatchShortCircuits) {
  GraphPtr clique = workload::MakeClique(6);
  auto q = ParseQuery("MATCH (a)-[*1..4]->(b) RETURN 1");
  ASSERT_TRUE(q.ok());
  const auto& m =
      static_cast<const ast::MatchClause&>(*q->parts[0].clauses[0]);
  MapEnvironment env;
  EvalContext ctx;
  ctx.graph = clique.get();
  MatchOptions opts;
  auto r = ExistsMatch(m.pattern, *clique, env, ctx, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(*r);  // and it returns quickly, without enumerating all
  PropertyGraph empty;
  auto r2 = ExistsMatch(m.pattern, empty, env, ctx, opts);
  ASSERT_TRUE(r2.ok());
  EXPECT_FALSE(*r2);
}

TEST(Matcher, DeletedEntitiesNeverMatch) {
  PropertyGraph g;
  NodeId a = g.CreateNode({"A"});
  NodeId b = g.CreateNode({"A"});
  ASSERT_TRUE(g.DeleteNode(a).ok());
  EXPECT_EQ(CountMatches(g, "(x:A)"), 1u);
  MapEnvironment env;
  env.Set("x", Value::Node(a));  // bound to a deleted node
  EXPECT_EQ(CountMatches(g, "(x)", env), 0u);
  (void)b;
}

TEST(Matcher, ColumnsAreAppearanceOrdered) {
  workload::PaperFigure4 f = workload::MakePaperFigure4Graph();
  auto m = Match(*f.graph, "q = (a)-[r:KNOWS]->(b)");
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->columns, (std::vector<std::string>{"q", "a", "r", "b"}));
}

}  // namespace
}  // namespace gqlite
