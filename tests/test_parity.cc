// Property/parity tests (DESIGN.md §7): the reference interpreter (the
// paper's formal semantics, §4) and the Volcano runtime (§2 "Neo4j
// implementation") must produce identical result *bags* on a corpus of
// read queries over randomized graphs — and all planner modes must agree
// with each other ("implementations are free to re-order the execution of
// clauses if this does not change the semantics of the query", §2).

#include <gtest/gtest.h>

#include "src/frontend/analyzer.h"
#include "src/frontend/parser.h"
#include "src/plan/runtime.h"
#include "src/workload/generators.h"
#include "tests/test_interp_util.h"

namespace gqlite {
namespace {

/// The read-query corpus: clause combinations, variable-length patterns,
/// optional matches, aggregation, nulls, unions, predicates.
const char* kCorpus[] = {
    "MATCH (a) RETURN count(*) AS c",
    "MATCH (a:A) RETURN a ORDER BY id(a)",
    "MATCH (a)-[r]->(b) RETURN a, r, b",
    "MATCH (a)-[r:T]->(b) RETURN id(a), id(b) ORDER BY id(a), id(b)",
    "MATCH (a)<-[r:U]-(b) RETURN count(*) AS c",
    "MATCH (a)-[r]-(b) RETURN count(*) AS c",
    "MATCH (a:A)-[:T]->(b:B) RETURN a.v, b.v",
    "MATCH (a)-[:T]->(b)-[:T]->(c) RETURN id(a), id(c)",
    "MATCH (a)-[:T]->(b)<-[:U]-(c) RETURN count(*) AS c",
    "MATCH (a)-[*1..2]->(b) RETURN count(*) AS c",
    "MATCH (a)-[:T*1..3]->(b) RETURN id(a), id(b)",
    "MATCH (a)-[rs:T*0..2]->(b) RETURN size(rs) AS hops, count(*) AS c",
    "MATCH (a)-[*2]-(b) RETURN count(*) AS c",
    "MATCH (a)-[r]->(a) RETURN count(*) AS c",
    "MATCH (a), (b) WHERE id(a) < id(b) RETURN count(*) AS c",
    "MATCH (a)-[r1]->(b), (b)-[r2]->(c) RETURN count(*) AS c",
    "MATCH (a) OPTIONAL MATCH (a)-[:T]->(b) RETURN id(a), b",
    "MATCH (a) OPTIONAL MATCH (a)-[:T]->(b:B) WHERE b.v > 2 "
    "RETURN id(a), b.v",
    "MATCH (a:A) OPTIONAL MATCH (a)-[r:U]->(b) RETURN a.v, count(b) AS c",
    "MATCH (a) WHERE a.v >= 3 RETURN a.v ORDER BY a.v DESC LIMIT 3",
    "MATCH (a) WITH a.v AS v WHERE v > 1 RETURN v ORDER BY v SKIP 1",
    "MATCH (a) RETURN DISTINCT a.v AS v ORDER BY v",
    "MATCH (a) RETURN a.v % 3 AS g, count(*) AS c, sum(a.v) AS s, "
    "min(a.v) AS mn, max(a.v) AS mx, avg(a.v) AS av ORDER BY g",
    "MATCH (a) RETURN collect(DISTINCT a.v) AS vs",
    "MATCH (a)-[r]->() RETURN type(r) AS t, count(*) AS c ORDER BY t",
    "MATCH (a) WHERE (a)-[:T]->() RETURN count(*) AS c",
    "MATCH (a) WHERE NOT (a)-[:U]->(:B) RETURN count(*) AS c",
    "MATCH (a) WHERE a:A OR a:B RETURN count(*) AS c",
    "MATCH (a) WHERE exists(a.v) AND a.v IN [1, 2, 3] RETURN count(*) AS c",
    "UNWIND [1, 2, 3] AS x MATCH (a {v: x}) RETURN x, count(*) AS c",
    "MATCH (a) UNWIND [a.v, a.v + 10] AS x RETURN count(x) AS c",
    "MATCH (a:A) RETURN a.v AS v UNION MATCH (b:B) RETURN b.v AS v",
    "MATCH (a:A) RETURN a.v AS v UNION ALL MATCH (b:B) RETURN b.v AS v",
    "MATCH (a) WITH count(*) AS n MATCH (b) RETURN n, count(*) AS m",
    "MATCH (a)-[r:T {w: 1}]->(b) RETURN count(*) AS c",
    "MATCH (a {v: 1})-[:T]->(b) RETURN id(b) ORDER BY id(b)",
    "MATCH p0 = (a)-[:T]->(b) RETURN count(*) AS c",  // fallback operator
    "MATCH (a) RETURN CASE WHEN a.v > 2 THEN 'hi' ELSE 'lo' END AS bucket, "
    "count(*) AS c ORDER BY bucket",
    "MATCH (a) RETURN [x IN [1, 2, 3] WHERE x > a.v % 2 | x * 2] AS xs "
    "ORDER BY id(a) LIMIT 2",
    "MATCH (a) WHERE a.v IS NOT NULL RETURN a.v ORDER BY a.v LIMIT 5",
    "MATCH (x)-[*0..]->(x) RETURN count(*) AS c",
    "MATCH (a)-[rs:T*1..2]->(b) WHERE all(r IN rs WHERE r.w >= 0) "
    "RETURN count(*) AS c",
    "MATCH (a) WHERE any(x IN [a.v, 3] WHERE x = 3) RETURN count(*) AS c",
    "MATCH (a) WITH collect(a.v) AS vs "
    "RETURN reduce(s = 0, v IN vs | s + v) AS total",
    "MATCH (a)-[r]->(b) RETURN reduce(s = '', t IN [type(r)] | s + t) AS t, "
    "count(*) AS c ORDER BY t",
    "MATCH (a) RETURN single(l IN labels(a) WHERE l = 'A') AS isA, "
    "count(*) AS c ORDER BY isA",
};

Result<Table> RunVolcano(GraphPtr graph, const std::string& query,
                         PlannerOptions::Mode mode,
                         bool use_join_expand = false) {
  GQL_ASSIGN_OR_RETURN(ast::Query q, ParseQuery(query));
  GQL_ASSIGN_OR_RETURN(QueryInfo info, Analyze(q));
  (void)info;
  GraphCatalog catalog;
  catalog.RegisterGraph(GraphCatalog::kDefaultGraphName, graph);
  uint64_t rand_state = 0xC0FFEE;
  ValueMap params;
  PlannerOptions opts;
  opts.mode = mode;
  opts.use_join_expand = use_join_expand;
  // This harness drives RunPlanned below CypherEngine, so it must honor
  // the CI morsel-size override itself (the batch-size-1 sanitizer leg
  // relies on this corpus walking the batch-boundary resume paths).
  GQL_ASSIGN_OR_RETURN(opts.batch_size, EffectiveBatchSize(opts.batch_size));
  // Keep the ast::Query alive through execution: RunPlanned takes it by
  // reference and finishes before returning.
  return RunPlanned(&catalog, graph, &params, opts, &rand_state, q);
}

class ParityTest : public ::testing::TestWithParam<const char*> {};

TEST_P(ParityTest, InterpreterVsVolcanoOnRandomGraphs) {
  const char* query = GetParam();
  for (uint64_t seed : {1u, 7u, 23u}) {
    GraphPtr g = workload::MakeRandomGraph(24, 40, seed);
    auto reference = testutil::RunInterp(g, query);
    ASSERT_TRUE(reference.ok())
        << query << "\n  " << reference.status().ToString();
    for (auto mode : {PlannerOptions::Mode::kGreedy,
                      PlannerOptions::Mode::kLeftToRight,
                      PlannerOptions::Mode::kDpStarts}) {
      auto planned = RunVolcano(g, query, mode);
      ASSERT_TRUE(planned.ok())
          << query << "\n  " << planned.status().ToString();
      EXPECT_TRUE(reference->SameBag(*planned))
          << "seed " << seed << " mode " << static_cast<int>(mode)
          << "\nquery: " << query << "\ninterpreter:\n"
          << reference->ToString() << "volcano:\n" << planned->ToString();
    }
    // The hash-join expand baseline must also agree (E14 is about speed,
    // not results).
    auto joined = RunVolcano(g, query, PlannerOptions::Mode::kGreedy, true);
    ASSERT_TRUE(joined.ok()) << query << "\n  " << joined.status().ToString();
    EXPECT_TRUE(reference->SameBag(*joined)) << query;
  }
}

INSTANTIATE_TEST_SUITE_P(Corpus, ParityTest, ::testing::ValuesIn(kCorpus));

TEST(ParityDense, CliqueAndGrid) {
  // Dense graphs stress relationship isomorphism and variable-length
  // multiplicities.
  const char* queries[] = {
      "MATCH (a)-[*1..2]->(b) RETURN count(*) AS c",
      "MATCH (a)-[:KNOWS]->(b)-[:KNOWS]->(c) WHERE a.idx < c.idx "
      "RETURN count(*) AS c",
      "MATCH (a)-[:RIGHT*0..3]->(b) RETURN count(*) AS c",
      "MATCH (a)-[:RIGHT]->(b)-[:DOWN]->(c) RETURN count(*) AS c",
  };
  std::vector<GraphPtr> graphs = {workload::MakeClique(5),
                                  workload::MakeGrid(3, 3)};
  for (const auto& g : graphs) {
    for (const char* q : queries) {
      auto reference = testutil::RunInterp(g, q);
      ASSERT_TRUE(reference.ok()) << q;
      auto planned = RunVolcano(g, q, PlannerOptions::Mode::kGreedy);
      ASSERT_TRUE(planned.ok()) << q << planned.status().ToString();
      EXPECT_TRUE(reference->SameBag(*planned))
          << q << "\ninterp:\n" << reference->ToString() << "volcano:\n"
          << planned->ToString();
    }
  }
}

TEST(ParityMorphism, ModesAgreeAcrossEngines) {
  GraphPtr g = workload::MakeCycle(4);
  const char* q = "MATCH (a)-[*1..4]->(a) RETURN count(*) AS c";
  for (Morphism m : {Morphism::kEdgeIsomorphism, Morphism::kNodeIsomorphism,
                     Morphism::kHomomorphism}) {
    MatchOptions mo;
    mo.morphism = m;
    mo.max_var_length = 4;
    auto reference = testutil::RunInterp(g, q, {}, mo);
    ASSERT_TRUE(reference.ok());
    auto parsed = ParseQuery(q);
    ASSERT_TRUE(parsed.ok());
    ast::Query query = std::move(parsed).value();
    GraphCatalog catalog;
    catalog.RegisterGraph(GraphCatalog::kDefaultGraphName, g);
    uint64_t rand_state = 1;
    ValueMap params;
    PlannerOptions opts;
    opts.match = mo;
    auto batch = EffectiveBatchSize(opts.batch_size);
    ASSERT_TRUE(batch.ok()) << batch.status().ToString();
    opts.batch_size = *batch;
    auto planned =
        RunPlanned(&catalog, g, &params, opts, &rand_state, query);
    ASSERT_TRUE(planned.ok());
    EXPECT_TRUE(reference->SameBag(*planned)) << static_cast<int>(m);
  }
}

}  // namespace
}  // namespace gqlite
