// Tests for the built-in graph algorithms (§1: "built-in support for
// graph algorithms (e.g., Page Rank, subgraph matching and so on)").

#include <gtest/gtest.h>

#include "src/algo/graph_algorithms.h"
#include "src/workload/generators.h"
#include "src/workload/paper_graphs.h"

namespace gqlite {
namespace {

using algo::BfsDistances;
using algo::DegreeHistogram;
using algo::PageRank;
using algo::ShortestPath;
using algo::TraversalOptions;
using algo::TriangleCount;
using algo::WeaklyConnectedComponents;

TEST(ShortestPathTest, ChainEndToEnd) {
  GraphPtr g = workload::MakeChain(6);
  auto p = ShortestPath(*g, NodeId{0}, NodeId{5});
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->length(), 5u);
  EXPECT_EQ(p->nodes.front(), NodeId{0});
  EXPECT_EQ(p->nodes.back(), NodeId{5});
}

TEST(ShortestPathTest, SourceEqualsTarget) {
  GraphPtr g = workload::MakeChain(3);
  auto p = ShortestPath(*g, NodeId{1}, NodeId{1});
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->length(), 0u);
}

TEST(ShortestPathTest, DirectionMatters) {
  GraphPtr g = workload::MakeChain(4);
  EXPECT_FALSE(ShortestPath(*g, NodeId{3}, NodeId{0}).has_value());
  TraversalOptions undirected;
  undirected.undirected = true;
  auto p = ShortestPath(*g, NodeId{3}, NodeId{0}, undirected);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->length(), 3u);
}

TEST(ShortestPathTest, TypeFilter) {
  PropertyGraph g;
  NodeId a = g.CreateNode();
  NodeId b = g.CreateNode();
  NodeId c = g.CreateNode();
  g.CreateRelationship(a, b, "SLOW").value();
  g.CreateRelationship(b, c, "SLOW").value();
  g.CreateRelationship(a, c, "FAST").value();
  TraversalOptions slow;
  slow.type = "SLOW";
  auto p = ShortestPath(g, a, c, slow);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->length(), 2u);
  auto any = ShortestPath(g, a, c);
  ASSERT_TRUE(any.has_value());
  EXPECT_EQ(any->length(), 1u);
  TraversalOptions nope;
  nope.type = "MISSING";
  EXPECT_FALSE(ShortestPath(g, a, c, nope).has_value());
}

TEST(ShortestPathTest, PaperGraphCitations) {
  workload::PaperFigure1 fig = workload::MakePaperFigure1Graph();
  TraversalOptions cites;
  cites.type = "CITES";
  // n9 cites n4 cites n2: distance 2.
  auto p = ShortestPath(*fig.graph, fig.n[9], fig.n[2], cites);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->length(), 2u);
}

TEST(BfsDistancesTest, GridManhattan) {
  GraphPtr g = workload::MakeGrid(3, 3);  // RIGHT/DOWN edges
  auto dist = BfsDistances(*g, NodeId{0});
  EXPECT_EQ(dist.size(), 9u);  // everything reachable going right/down
  EXPECT_EQ(dist[8], 4);       // corner to corner = 2+2 hops
  auto from_corner = BfsDistances(*g, NodeId{8});
  EXPECT_EQ(from_corner.size(), 1u);  // nothing reachable downstream
}

TEST(PageRankTest, SumsToOneAndRanksHubs) {
  workload::DependencyConfig cfg;
  cfg.layers = 3;
  cfg.per_layer = 5;
  cfg.fanout = 2;
  GraphPtr g = workload::MakeDependencyNetwork(cfg);
  auto pr = PageRank(*g);
  double sum = 0;
  for (const auto& [id, score] : pr) sum += score;
  EXPECT_NEAR(sum, 1.0, 1e-6);
  // The tier-0 core service receives every chain of dependency mass.
  uint64_t best = 0;
  double best_score = -1;
  for (const auto& [id, score] : pr) {
    if (score > best_score) {
      best_score = score;
      best = id;
    }
  }
  EXPECT_EQ(g->NodeProperty(NodeId{best}, "name").AsString(), "svc-0-0");
}

TEST(PageRankTest, SymmetricCycleIsUniform) {
  GraphPtr g = workload::MakeCycle(5);
  auto pr = PageRank(*g);
  for (const auto& [id, score] : pr) EXPECT_NEAR(score, 0.2, 1e-9);
}

TEST(ComponentsTest, DisjointChains) {
  PropertyGraph g;
  NodeId a0 = g.CreateNode();
  NodeId a1 = g.CreateNode();
  NodeId b0 = g.CreateNode();
  NodeId b1 = g.CreateNode();
  NodeId lone = g.CreateNode();
  g.CreateRelationship(a0, a1, "T").value();
  g.CreateRelationship(b1, b0, "T").value();  // direction irrelevant (WCC)
  auto comp = WeaklyConnectedComponents(g);
  EXPECT_EQ(comp[a0.id], comp[a1.id]);
  EXPECT_EQ(comp[b0.id], comp[b1.id]);
  EXPECT_NE(comp[a0.id], comp[b0.id]);
  EXPECT_EQ(comp[lone.id], lone.id);
}

TEST(TriangleCountTest, CliqueAndGrid) {
  EXPECT_EQ(TriangleCount(*workload::MakeClique(4)), 4);   // C(4,3)
  EXPECT_EQ(TriangleCount(*workload::MakeClique(5)), 10);  // C(5,3)
  EXPECT_EQ(TriangleCount(*workload::MakeGrid(3, 3)), 0);  // bipartite-ish
  EXPECT_EQ(TriangleCount(*workload::MakeCycle(3)), 1);
}

TEST(TriangleCountTest, SelfLoopsAndParallelEdgesIgnored) {
  PropertyGraph g;
  NodeId a = g.CreateNode();
  NodeId b = g.CreateNode();
  NodeId c = g.CreateNode();
  g.CreateRelationship(a, a, "SELF").value();
  g.CreateRelationship(a, b, "T").value();
  g.CreateRelationship(b, a, "T").value();  // parallel (reverse)
  g.CreateRelationship(b, c, "T").value();
  g.CreateRelationship(c, a, "T").value();
  EXPECT_EQ(TriangleCount(g), 1);
}

TEST(DegreeHistogramTest, Chain) {
  GraphPtr g = workload::MakeChain(4);
  auto hist = DegreeHistogram(*g);
  // Two endpoints with degree 1, two middles with degree 2.
  ASSERT_EQ(hist.size(), 2u);
  EXPECT_EQ(hist[0], (std::pair<size_t, size_t>{1, 2}));
  EXPECT_EQ(hist[1], (std::pair<size_t, size_t>{2, 2}));
}

TEST(AlgorithmsOnDeletedNodes, SkipsTombstones) {
  PropertyGraph g;
  NodeId a = g.CreateNode();
  NodeId b = g.CreateNode();
  NodeId c = g.CreateNode();
  g.CreateRelationship(a, b, "T").value();
  ASSERT_TRUE(g.DeleteNode(c).ok());
  EXPECT_EQ(PageRank(g).size(), 2u);
  EXPECT_EQ(WeaklyConnectedComponents(g).size(), 2u);
  EXPECT_FALSE(ShortestPath(g, a, c).has_value());
}

}  // namespace
}  // namespace gqlite
