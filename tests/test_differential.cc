// Differential test harness pinning the batched and morsel-driven
// PARALLEL runtimes to the single-threaded oracle. A seeded random-query
// generator (MATCH / WHERE / WITH / RETURN / ORDER BY / aggregation over
// a generated property graph) executes every query on
//
//   * the reference interpreter — the implementation of the paper's
//     formal semantics (Francis et al.'s SameBag equivalence is the
//     oracle relation),
//   * the batched Volcano runtime at morsel sizes 1 and 1024,
//   * the parallel runtime at 1, 2 and 4 workers,
//
// and asserts SameBag-identical results everywhere (byte-identical when
// the query is fully ordered). Queries are deterministic from a fixed
// seed, so a failure reproduces by number. The grammar is deliberately
// string-heavy — short (inline-representation) and long (shared heap
// representation) string properties, toUpper/substring/concatenation
// projections, string WHERE predicates and string GROUP BY keys — so the
// copy-on-write value representation is pinned by the oracle on every
// executor leg (batch 1/1024, 1/2/4 workers).
//
// collect() is the one bag-breaking aggregate: its LIST order mirrors
// the executor's row order, which legitimately differs between the
// interpreter and the planner's chosen pipeline (and, for var-length
// patterns, between morsel sizes). collect() cases therefore pin the
// parallel runtimes against the serial BATCHED oracle (same plan, same
// row order) instead of the interpreter, and avoid var-length hops.

#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/core/engine.h"
#include "src/plan/runtime.h"

namespace gqlite {
namespace {

/// splitmix64: deterministic across platforms (std::mt19937 would be
/// too, but the distributions are not).
struct Rng {
  uint64_t state;
  uint64_t Next() {
    uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }
  /// Uniform in [0, n).
  uint64_t Below(uint64_t n) { return Next() % n; }
  bool Chance(int percent) { return Below(100) < static_cast<uint64_t>(percent); }
  template <typename T>
  const T& Pick(const std::vector<T>& v) {
    return v[Below(v.size())];
  }
};

/// ~150 nodes over labels {A, B, C} with integer properties `id`
/// (unique), `v` (0..9), `w` (0..4, present on ~60%), a SHORT string
/// `name` (inline small-string representation) and a LONG string `blurb`
/// (shared heap representation, ~40-70 bytes, present on ~80%), and ~400
/// relationships of types {R, S} with an integer `k` on ~70%. All
/// properties are integers or strings: float aggregation would make
/// per-partition partial sums legitimately differ in the last ulp.
GraphPtr MakeDifferentialGraph(uint64_t seed) {
  Rng rng{seed};
  auto g = std::make_shared<PropertyGraph>();
  const std::vector<std::vector<std::string>> label_sets = {
      {"A"}, {"B"}, {"C"}, {"A", "B"}, {}};
  const size_t n = 150;
  std::vector<NodeId> nodes;
  for (size_t i = 0; i < n; ++i) {
    PropertyList props;
    props.emplace_back("id", Value::Int(static_cast<int64_t>(i)));
    props.emplace_back("v", Value::Int(static_cast<int64_t>(rng.Below(10))));
    if (rng.Chance(60)) {
      props.emplace_back("w", Value::Int(static_cast<int64_t>(rng.Below(5))));
    }
    props.emplace_back("name", Value::String("n" + std::to_string(i)));
    if (rng.Chance(80)) {
      // Long enough to always take the shared (heap) string path.
      std::string blurb = "blurb-" + std::to_string(i) + "-";
      while (blurb.size() < 40 + rng.Below(30)) {
        blurb += static_cast<char>('a' + rng.Below(26));
      }
      props.emplace_back("blurb", Value::String(std::move(blurb)));
    }
    nodes.push_back(g->CreateNode(rng.Pick(label_sets), props));
  }
  for (size_t e = 0; e < 400; ++e) {
    NodeId src = nodes[rng.Below(n)];
    NodeId tgt = nodes[rng.Below(n)];
    PropertyList props;
    if (rng.Chance(70)) {
      props.emplace_back("k", Value::Int(static_cast<int64_t>(rng.Below(6))));
    }
    auto r = g->CreateRelationship(src, tgt, rng.Chance(50) ? "R" : "S",
                                   props);
    EXPECT_TRUE(r.ok());
  }
  return g;
}

struct GeneratedQuery {
  std::string text;
  bool ordered = false;       // ORDER BY over every output column
  bool volcano_only = false;  // collect(): oracle is the serial batched run
};

/// One random query. The grammar stays inside the planner's pipeline
/// subset most of the time so the parallel runtime is actually
/// exercised, but deliberately includes serial-fallback shapes (WITH
/// aggregation, OPTIONAL MATCH) — the harness must also prove the
/// fallback routing is sound.
GeneratedQuery GenerateQuery(Rng& rng) {
  const std::vector<std::string> labels = {"", ":A", ":B", ":C"};
  const std::vector<std::string> types = {"", ":R", ":S", ":R|S"};
  const std::vector<std::string> int_props = {"v", "id", "w"};

  GeneratedQuery out;
  // ---- MATCH ----
  int shape = static_cast<int>(rng.Below(6));
  std::vector<std::string> node_vars;  // bound node variables
  std::string match = "MATCH ";
  auto arrow = [&](const std::string& rel) {
    switch (rng.Below(3)) {
      case 0: return "-" + rel + "->";
      case 1: return "<-" + rel + "-";
      default: return "-" + rel + "-";
    }
  };
  bool has_varlength = false;
  switch (shape) {
    case 0:  // single node
      match += "(a" + rng.Pick(labels) + ")";
      node_vars = {"a"};
      break;
    case 1:  // one hop
      match += "(a" + rng.Pick(labels) + ")" +
               arrow("[r" + rng.Pick(types) + "]") + "(b" + rng.Pick(labels) +
               ")";
      node_vars = {"a", "b"};
      break;
    case 2:  // two-hop chain
      match += "(a" + rng.Pick(labels) + ")" +
               arrow("[" + rng.Pick(types) + "]") + "(b)" +
               arrow("[" + rng.Pick(types) + "]") + "(c" + rng.Pick(labels) +
               ")";
      node_vars = {"a", "b", "c"};
      break;
    case 3:  // var-length
      match += "(a" + rng.Pick(labels) + ")-[" + rng.Pick(types) + "*1.." +
               std::to_string(1 + rng.Below(2)) + "]->(b)";
      node_vars = {"a", "b"};
      has_varlength = true;
      break;
    case 4:  // one hop with relationship property constraint
      match += "(a)" +
               arrow("[r" + rng.Pick(types) + " {k: " +
                     std::to_string(rng.Below(6)) + "}]") +
               "(b)";
      node_vars = {"a", "b"};
      break;
    default:  // cross product of two nodes
      match += "(a" + rng.Pick(labels) + "), (b" + rng.Pick(labels) + ")";
      node_vars = {"a", "b"};
      break;
  }

  // ---- WHERE ----
  auto predicate = [&]() -> std::string {
    const std::string& x = rng.Pick(node_vars);
    switch (rng.Below(9)) {
      case 0:
        return x + ".v > " + std::to_string(rng.Below(10));
      case 1:
        return x + ".v <= " + std::to_string(rng.Below(10));
      case 2:
        return x + ".id % " + std::to_string(2 + rng.Below(3)) + " = 0";
      case 3:
        return x + ".w IS NULL";
      case 4:
        return x + ".w IS NOT NULL";
      case 5:
        // Inline-string comparison: name is 'n<id>'.
        return x + ".name STARTS WITH 'n" + std::to_string(rng.Below(10)) +
               "'";
      case 6:
        return x + ".name " + (rng.Chance(50) ? ">= 'n5'" : "< 'n5'");
      case 7:
        // Heap-string comparison (blurb is absent on ~20%: exercises the
        // null path too).
        return x + ".blurb CONTAINS '" +
               std::string(1, static_cast<char>('a' + rng.Below(26))) + "'";
      default: {
        const std::string& y = rng.Pick(node_vars);
        return x + ".v = " + y + ".v";
      }
    }
  };
  if (rng.Chance(60)) {
    match += " WHERE " + predicate();
    if (rng.Chance(30)) {
      match += rng.Chance(50) ? " AND " : " OR ";
      match += predicate();
    }
  }

  // ---- optional WITH ----
  std::vector<std::string> cols;  // value columns available to RETURN
  std::vector<bool> col_is_int;   // parallel to cols: safe for sum()/avg()
  bool node_vars_in_scope = true;  // false once a WITH projects them away
  std::string with;
  if (rng.Chance(30)) {
    // Per-row WITH (parallel-safe): project properties, maybe filter.
    // ~half the projections produce STRINGS (case mapping, substring,
    // concatenation) so the shared/inline string representation flows
    // through WITH, the filter, grouping and ORDER BY on every executor.
    with = " WITH ";
    bool strings = rng.Chance(50);
    for (size_t i = 0; i < node_vars.size(); ++i) {
      if (i) with += ", ";
      if (strings) {
        switch (rng.Below(4)) {
          case 0:
            with += "toUpper(" + node_vars[i] + ".name)";
            break;
          case 1:
            with += "substring(" + node_vars[i] + ".blurb, 0, " +
                    std::to_string(1 + rng.Below(8)) + ")";
            break;
          case 2:
            with += node_vars[i] + ".name + '_' + " + node_vars[i] +
                    ".name";
            break;
          default:
            with += node_vars[i] + ".name + " + node_vars[i] + ".v";
            break;
        }
        with += " AS p" + std::to_string(i);
      } else {
        with += node_vars[i] + "." + rng.Pick(int_props) + " AS p" +
                std::to_string(i);
      }
      cols.push_back("p" + std::to_string(i));
      col_is_int.push_back(!strings);
    }
    if (rng.Chance(50)) {
      with += strings ? " WHERE p0 IS NOT NULL"
                      : " WHERE p0 >= " + std::to_string(rng.Below(8));
    }
    node_vars_in_scope = false;
  } else if (rng.Chance(12)) {
    // Aggregating WITH (serial fallback on purpose).
    with = " WITH " + node_vars[0] + "." + rng.Pick(int_props) +
           " AS p0, count(*) AS cnt";
    cols = {"p0", "cnt"};
    col_is_int = {true, true};
    node_vars_in_scope = false;
  } else {
    for (const std::string& v : node_vars) {
      if (rng.Chance(25)) {
        cols.push_back(v + (rng.Chance(70) ? ".name" : ".blurb"));
        col_is_int.push_back(false);
      } else {
        cols.push_back(v + "." + rng.Pick(int_props));
        col_is_int.push_back(true);
      }
    }
  }

  // ---- RETURN ----
  std::string ret = " RETURN ";
  std::vector<std::string> out_cols;
  int ret_shape = static_cast<int>(rng.Below(10));
  if (ret_shape < 4) {
    // Plain projection.
    for (size_t i = 0; i < cols.size(); ++i) {
      if (i) ret += ", ";
      ret += cols[i] + " AS c" + std::to_string(i);
      out_cols.push_back("c" + std::to_string(i));
    }
  } else if (ret_shape < 7) {
    // Global aggregation. sum()/avg() are numeric-only, so they draw from
    // the integer columns; min/max/count(DISTINCT) accept the string
    // columns too (string orderability and hashing under aggregation).
    std::string int_col;
    for (size_t i = 0; i < cols.size(); ++i) {
      if (col_is_int[i]) int_col = cols[i];
    }
    ret += "count(*) AS c0, min(" + cols[0] + ") AS c1, max(" +
           cols.back() + ") AS c2";
    if (!int_col.empty()) {
      ret += ", sum(" + int_col + ") AS c3, avg(" + int_col + ") AS c4";
    }
    if (rng.Chance(40)) {
      ret += ", count(DISTINCT " + cols[0] + ") AS c5";
    }
    out_cols.clear();  // single row; ordering is moot
  } else if (ret_shape < 9) {
    // Grouped aggregation; string keys take the same path as integer keys
    // (hash + equivalence over the shared representation). `x.name` is
    // only legal while the node variables are still in scope (no WITH
    // projected them away); otherwise a string column from `cols` serves
    // as the (possibly string) grouping key.
    if (node_vars_in_scope && (rng.Chance(35) || !col_is_int.back())) {
      const std::string& x = rng.Pick(node_vars);
      ret += x + ".name AS g, count(*) AS c, min(" + cols[0] +
             ") AS mn, max(" + cols.back() + ") AS mx";
    } else if (!col_is_int.back()) {
      ret += cols[0] + " AS g, count(*) AS c, min(" + cols.back() +
             ") AS mn, max(" + cols.back() + ") AS mx";
    } else {
      ret += cols[0] + " AS g, count(*) AS c, sum(" + cols.back() +
             ") AS s";
    }
    out_cols = {"g"};
  } else {
    // collect(): order-sensitive — volcano-only oracle, no var-length
    // (its emit order differs across morsel sizes).
    if (has_varlength) {
      ret += "count(*) AS c";
      out_cols.clear();
    } else {
      ret += "collect(" + cols[0] + ") AS vs";
      if (rng.Chance(50)) ret = " RETURN collect(DISTINCT " + cols[0] + ") AS vs";
      out_cols.clear();
      out.volcano_only = true;
    }
  }
  if (rng.Chance(20) && !out.volcano_only) {
    // DISTINCT projection.
    ret = " RETURN DISTINCT" + ret.substr(std::string(" RETURN").size());
  }

  // ---- ORDER BY over every output column (canonical order) ----
  if (!out_cols.empty() && rng.Chance(55)) {
    ret += " ORDER BY ";
    for (size_t i = 0; i < out_cols.size(); ++i) {
      if (i) ret += ", ";
      ret += out_cols[i];
      if (rng.Chance(30)) ret += " DESC";
    }
    out.ordered = true;
    // SKIP/LIMIT only on fully ordered output: ties are identical rows,
    // so the selected multiset is well-defined across executors.
    if (rng.Chance(40)) {
      if (rng.Chance(50)) ret += " SKIP " + std::to_string(rng.Below(5));
      ret += " LIMIT " + std::to_string(1 + rng.Below(20));
    }
  }

  out.text = match + with + ret;
  return out;
}

/// One random PIPELINE-BREAKER-heavy query (ISSUE 8): ORDER BY with
/// SKIP/LIMIT, DISTINCT projections, many-group (>= 64 groups)
/// aggregation, and intermediate-WITH breakers — the shapes the parallel
/// merge stages (parallel merge sort, partitioned aggregation,
/// partitioned DISTINCT) execute, generated to stay inside the planner's
/// parallel subset so the breaker paths actually run.
GeneratedQuery GenerateBreakerQuery(Rng& rng) {
  const std::vector<std::string> labels = {"", ":A", ":B", ":C"};
  GeneratedQuery out;
  std::string match = "MATCH (a" + rng.Pick(labels) + ")";
  std::vector<std::string> vars = {"a"};
  if (rng.Chance(35)) {
    match += (rng.Chance(50) ? "-[:R]->" : "-[:S]->") + std::string("(b)");
    vars.push_back("b");
  }
  if (rng.Chance(40)) {
    match += " WHERE " + rng.Pick(vars) + ".v " +
             (rng.Chance(50) ? ">= " : "< ") + std::to_string(rng.Below(9));
  }
  switch (rng.Below(5)) {
    case 0: {
      // Parallel merge sort with the top-K pushdown: fully ordered
      // output, SKIP and/or LIMIT.
      std::string ret = " RETURN " + vars[0] + ".id AS x, " +
                        rng.Pick(vars) + ".v AS y ORDER BY x" +
                        (rng.Chance(30) ? " DESC" : "") + ", y";
      if (rng.Chance(60)) ret += " SKIP " + std::to_string(rng.Below(20));
      ret += " LIMIT " + std::to_string(1 + rng.Below(40));
      out.text = match + ret;
      out.ordered = true;
      break;
    }
    case 1: {
      // Partitioned DISTINCT, optionally + merge sort above it.
      std::string ret = " RETURN DISTINCT " + rng.Pick(vars) + ".v AS x, " +
                        rng.Pick(vars) + ".w AS y";
      if (rng.Chance(60)) {
        ret += " ORDER BY x, y";
        out.ordered = true;
        if (rng.Chance(40)) ret += " LIMIT " + std::to_string(1 + rng.Below(12));
      }
      out.text = match + ret;
      break;
    }
    case 2: {
      // Many-group partitioned aggregation: id/name group keys give >= 64
      // groups over the 150-node graph (integer and string key hashing).
      std::string key = rng.Chance(50) ? ".id" : ".name";
      std::string ret = " RETURN " + vars[0] + key + " AS g, count(*) AS c, " +
                        "sum(" + rng.Pick(vars) + ".v) AS s, min(" +
                        rng.Pick(vars) + ".w) AS mn";
      if (rng.Chance(60)) {
        ret += " ORDER BY g";
        out.ordered = true;
      }
      out.text = match + ret;
      break;
    }
    case 3: {
      // Intermediate-WITH merge sort (single fully-ordered column, so
      // the LIMIT-selected multiset is well-defined across executors).
      std::string with = " WITH " + rng.Pick(vars) + ".v AS v ORDER BY v" +
                         (rng.Chance(30) ? " DESC" : "") + " LIMIT " +
                         std::to_string(1 + rng.Below(30));
      out.text = match + with +
                 " RETURN count(*) AS c, sum(v) AS s, min(v) AS mn";
      break;
    }
    default: {
      // Intermediate-WITH partitioned DISTINCT.
      std::string with = " WITH DISTINCT " + rng.Pick(vars) + ".v AS v";
      if (rng.Chance(40)) with += ", " + vars[0] + ".w AS w";
      out.text = match + with + " RETURN count(*) AS c, min(v) AS mn";
      break;
    }
  }
  return out;
}

TEST(Differential, RuntimesMatchTheOracle) {
  // GQLITE_BATCH_SIZE / GQLITE_THREADS (the sanitizer CI legs) reshape
  // the executor matrix rather than skip it: every pairing below is a
  // valid differential at ANY effective batch size or worker count —
  // only the share-of-parallel assertion at the end needs workers > 1.
  auto eff_threads = EffectiveNumThreads(4);
  ASSERT_TRUE(eff_threads.ok()) << eff_threads.status().ToString();

  GraphPtr graph = MakeDifferentialGraph(0xD1FFE2E47ULL);

  // The executor matrix. All engines share one read-only graph.
  EngineOptions interp_opts;
  interp_opts.mode = ExecutionMode::kInterpreter;
  CypherEngine oracle(interp_opts);
  oracle.set_default_graph(graph);

  struct Runtime {
    const char* name;
    CypherEngine engine;
  };
  std::vector<Runtime> runtimes;
  auto add_runtime = [&](const char* name, size_t batch, size_t threads) {
    EngineOptions opts;
    opts.batch_size = batch;
    opts.num_threads = threads;
    runtimes.push_back({name, CypherEngine(opts)});
    runtimes.back().engine.set_default_graph(graph);
  };
  add_runtime("batch1", 1, 1);
  add_runtime("batch1024", 1024, 1);
  add_runtime("parallel1", 1024, 1);
  add_runtime("parallel2", 1024, 2);
  add_runtime("parallel4", 1024, 4);
  const size_t kSerialBatched = 1;  // runtimes[1] is the volcano oracle

  Rng rng{0x5EEDED5EEDULL};
  const int kCases = 300;
  int executed = 0;
  int oracle_errors = 0;
  for (int i = 0; i < kCases; ++i) {
    GeneratedQuery q = GenerateQuery(rng);
    SCOPED_TRACE("case " + std::to_string(i) + ": " + q.text);
    auto want = oracle.Execute(q.text);
    std::optional<Table> volcano_ref;
    const Table* reference = nullptr;
    if (q.volcano_only) {
      // collect(): the serial batched runtime is the oracle (same plan =>
      // same row order feeding the list).
      auto volcano_want = runtimes[kSerialBatched].engine.Execute(q.text);
      ASSERT_EQ(want.ok(), volcano_want.ok()) << q.text;
      if (!want.ok()) {
        ++oracle_errors;
        continue;
      }
      volcano_ref = std::move(volcano_want->table);
      reference = &*volcano_ref;
    }
    if (!q.volcano_only && !want.ok()) {
      // The oracle rejected the query (type error on some row, ...):
      // every runtime must reject it too — silently succeeding would
      // mean the runtimes disagree about evaluation semantics.
      ++oracle_errors;
      for (auto& rt : runtimes) {
        auto got = rt.engine.Execute(q.text);
        EXPECT_FALSE(got.ok()) << rt.name << " accepted what the "
                               << "interpreter rejected: " << q.text;
      }
      continue;
    }
    if (reference == nullptr) reference = &want->table;
    ++executed;
    for (auto& rt : runtimes) {
      if (q.volcano_only && &rt == &runtimes[kSerialBatched]) continue;
      auto got = rt.engine.Execute(q.text);
      ASSERT_TRUE(got.ok()) << rt.name << ": " << got.status().ToString();
      EXPECT_TRUE(reference->SameBag(got->table))
          << rt.name << " diverges\noracle:\n" << reference->ToString()
          << rt.name << ":\n" << got->table.ToString();
      if (q.ordered) {
        EXPECT_EQ(reference->ToString(), got->table.ToString())
            << rt.name << " ordered output is not byte-identical";
      }
    }
  }

  // The harness is only meaningful if it actually exercised the paths it
  // claims to pin: most cases run, and the parallel engines really took
  // the parallel runtime (not the serial fallback) for a healthy share.
  EXPECT_GE(executed, kCases * 9 / 10) << oracle_errors << " oracle errors";
  const auto& par4 = runtimes[4];
  ASSERT_STREQ(par4.name, "parallel4");
  if (*eff_threads > 1) {
    EXPECT_GE(par4.engine.parallel_stats().queries,
              static_cast<uint64_t>(executed) / 2)
        << "most generated queries should hit the parallel runtime";
  }
}

TEST(Differential, ParallelBreakersMatchTheOracle) {
  // ISSUE 8: pin the parallel merge stages (parallel merge sort,
  // partitioned aggregation, partitioned DISTINCT) to the interpreter
  // oracle across every executor leg, byte-identically when ordered —
  // and prove the cases actually exercised the breaker paths instead of
  // quietly falling back to the serial drain.
  auto eff_threads = EffectiveNumThreads(4);
  ASSERT_TRUE(eff_threads.ok()) << eff_threads.status().ToString();

  GraphPtr graph = MakeDifferentialGraph(0xB2EA4E25ULL);
  EngineOptions interp_opts;
  interp_opts.mode = ExecutionMode::kInterpreter;
  CypherEngine oracle(interp_opts);
  oracle.set_default_graph(graph);

  struct Runtime {
    const char* name;
    CypherEngine engine;
  };
  std::vector<Runtime> runtimes;
  auto add_runtime = [&](const char* name, size_t batch, size_t threads) {
    EngineOptions opts;
    opts.batch_size = batch;
    opts.num_threads = threads;
    runtimes.push_back({name, CypherEngine(opts)});
    runtimes.back().engine.set_default_graph(graph);
  };
  add_runtime("batch1", 1, 1);
  add_runtime("batch1024", 1024, 1);
  add_runtime("parallel2", 1024, 2);
  add_runtime("parallel4", 1024, 4);

  Rng rng{0xB2EA4E2D1FFULL};
  const int kCases = 150;
  int executed = 0;
  for (int i = 0; i < kCases; ++i) {
    GeneratedQuery q = GenerateBreakerQuery(rng);
    SCOPED_TRACE("breaker case " + std::to_string(i) + ": " + q.text);
    auto want = oracle.Execute(q.text);
    ASSERT_TRUE(want.ok()) << want.status().ToString();
    ++executed;
    for (auto& rt : runtimes) {
      auto got = rt.engine.Execute(q.text);
      ASSERT_TRUE(got.ok()) << rt.name << ": " << got.status().ToString();
      EXPECT_TRUE(want->table.SameBag(got->table))
          << rt.name << " diverges\noracle:\n" << want->table.ToString()
          << rt.name << ":\n" << got->table.ToString();
      if (q.ordered) {
        EXPECT_EQ(want->table.ToString(), got->table.ToString())
            << rt.name << " ordered output is not byte-identical";
      }
    }
  }

  // >= 50% of the cases must have taken a parallel BREAKER path (a merge
  // stage beyond plain concat) on the 4-worker engine — the generator
  // regressing into serial-fallback or concat-only shapes would hollow
  // out everything this test claims to pin.
  if (*eff_threads > 1) {
    CypherEngine::ParallelStats ps = runtimes.back().engine.parallel_stats();
    uint64_t breaker_runs =
        ps.sort_merges + ps.agg_merges + ps.distinct_merges;
    EXPECT_GE(breaker_runs, static_cast<uint64_t>(executed) / 2)
        << "sort=" << ps.sort_merges << " agg=" << ps.agg_merges
        << " distinct=" << ps.distinct_merges << " of " << executed;
  }
}

}  // namespace
}  // namespace gqlite
