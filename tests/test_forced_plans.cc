// Forced-plan differential harness for the cost-based planner: every
// side of every choice the cost model makes (adjacency Expand vs
// relationship-store HashJoinExpand per hop, left-to-right vs
// right-to-left chain direction) must produce the SAME bag of rows. The
// harness generates seeded chain-shaped queries — the shapes where the
// planner's DecideChain search actually has choices — and pins every
// forced configuration, across the serial batched (morsel 1 and 1024)
// and parallel (1, 2 and 4 worker) executor legs, to the reference
// interpreter. A cost model that merely picks SLOW plans is a perf bug;
// one whose alternatives disagree is a correctness bug, and this is the
// test that catches it.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "src/core/engine.h"
#include "src/plan/runtime.h"

namespace gqlite {
namespace {

/// splitmix64, same as test_differential.cc: deterministic everywhere.
struct Rng {
  uint64_t state;
  uint64_t Next() {
    uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }
  uint64_t Below(uint64_t n) { return Next() % n; }
  bool Chance(int percent) {
    return Below(100) < static_cast<uint64_t>(percent);
  }
  template <typename T>
  const T& Pick(const std::vector<T>& v) {
    return v[Below(v.size())];
  }
};

/// A graph with DELIBERATELY lopsided statistics, so the cost-based
/// choices are non-trivial: a few :Hub nodes with large out-fans of :R,
/// many :Leaf nodes, a sparse :S type, and property `v` (10 distinct
/// values) / `id` (unique) for selective equality predicates.
GraphPtr MakeChainGraph(uint64_t seed) {
  Rng rng{seed};
  auto g = std::make_shared<PropertyGraph>();
  std::vector<NodeId> hubs;
  std::vector<NodeId> leaves;
  for (int i = 0; i < 8; ++i) {
    hubs.push_back(g->CreateNode(
        {"Hub"}, {{"id", Value::Int(i)},
                  {"v", Value::Int(static_cast<int64_t>(rng.Below(10)))}}));
  }
  for (int i = 0; i < 120; ++i) {
    leaves.push_back(g->CreateNode(
        {"Leaf"}, {{"id", Value::Int(100 + i)},
                   {"v", Value::Int(static_cast<int64_t>(rng.Below(10)))}}));
  }
  // Dense hub->leaf :R edges (big forward fan, tiny reverse fan).
  for (NodeId h : hubs) {
    for (int i = 0; i < 25; ++i) {
      auto r = g->CreateRelationship(h, leaves[rng.Below(leaves.size())],
                                     "R", {});
      EXPECT_TRUE(r.ok());
    }
  }
  // Sparse leaf->leaf :S edges (cheap either way).
  for (int i = 0; i < 60; ++i) {
    auto r = g->CreateRelationship(leaves[rng.Below(leaves.size())],
                                   leaves[rng.Below(leaves.size())], "S", {});
    EXPECT_TRUE(r.ok());
  }
  // A few leaf->hub :S backlinks so <- traversals reach hubs too.
  for (int i = 0; i < 20; ++i) {
    auto r = g->CreateRelationship(leaves[rng.Below(leaves.size())],
                                   hubs[rng.Below(hubs.size())], "S", {});
    EXPECT_TRUE(r.ok());
  }
  return g;
}

struct GeneratedQuery {
  std::string text;
  bool ordered = false;
};

/// One random chain query of 1-3 hops: mixed arrow directions, types,
/// labels, WHERE equalities (the selectivities the cost model ranks
/// anchors by) and an occasional short var-length hop. The output is
/// always a bag of scalars, never collect(): row ORDER legitimately
/// differs between plan shapes, the row BAG must not.
GeneratedQuery GenerateChainQuery(Rng& rng) {
  const std::vector<std::string> labels = {"", ":Hub", ":Leaf"};
  const std::vector<std::string> types = {"", ":R", ":S", ":R|S"};
  GeneratedQuery out;
  size_t hops = 1 + rng.Below(3);
  std::vector<std::string> vars;
  std::string match = "MATCH ";
  for (size_t i = 0; i <= hops; ++i) {
    std::string v(1, static_cast<char>('a' + i));
    vars.push_back(v);
    match += "(" + v + rng.Pick(labels) + ")";
    if (i == hops) break;
    std::string rel = "[" + rng.Pick(types);
    if (hops == 1 && rng.Chance(20)) {
      rel += "*1.." + std::to_string(1 + rng.Below(2));
    }
    rel += "]";
    match += rng.Chance(50) ? ("-" + rel + "->") : ("<-" + rel + "-");
  }
  if (rng.Chance(70)) {
    const std::string& x = rng.Pick(vars);
    switch (rng.Below(4)) {
      case 0:
        match += " WHERE " + x + ".id = " + std::to_string(rng.Below(130));
        break;
      case 1:
        match += " WHERE " + x + ".v = " + std::to_string(rng.Below(10));
        break;
      case 2:
        match += " WHERE " + x + ".v > " + std::to_string(rng.Below(9));
        break;
      default:
        match += " WHERE " + x + ":Leaf";
        break;
    }
    if (rng.Chance(30)) {
      const std::string& y = rng.Pick(vars);
      match += " AND " + y + ".v <= " + std::to_string(1 + rng.Below(9));
    }
  }
  std::string ret = " RETURN ";
  if (rng.Chance(30)) {
    ret += "count(*) AS c";
  } else {
    ret += vars.front() + ".id AS x, " + vars.back() + ".id AS y";
    if (rng.Chance(50)) {
      ret += " ORDER BY x, y";
      out.ordered = true;
    }
  }
  out.text = match + ret;
  return out;
}

TEST(ForcedPlans, AllPlanAlternativesAgreeOnEveryExecutorLeg) {
  auto eff_threads = EffectiveNumThreads(4);
  ASSERT_TRUE(eff_threads.ok()) << eff_threads.status().ToString();

  GraphPtr graph = MakeChainGraph(0xF0ECEDCA5E5ULL);

  EngineOptions interp_opts;
  interp_opts.mode = ExecutionMode::kInterpreter;
  CypherEngine oracle(interp_opts);
  oracle.set_default_graph(graph);

  // Every forced (expand strategy, direction) corner plus the cost-based
  // default, each across the five executor legs.
  struct Config {
    const char* name;
    ExpandStrategy strategy;
    DirectionPolicy direction;
  };
  const std::vector<Config> configs = {
      {"adjacency/right", ExpandStrategy::kAdjacency,
       DirectionPolicy::kForceRight},
      {"adjacency/left", ExpandStrategy::kAdjacency,
       DirectionPolicy::kForceLeft},
      {"hashjoin/right", ExpandStrategy::kHashJoin,
       DirectionPolicy::kForceRight},
      {"hashjoin/left", ExpandStrategy::kHashJoin,
       DirectionPolicy::kForceLeft},
      {"cost/cost", ExpandStrategy::kCost, DirectionPolicy::kCost},
  };
  struct Leg {
    size_t batch;
    size_t threads;
  };
  const std::vector<Leg> legs = {{1, 1}, {1024, 1}, {1024, 1}, {1024, 2},
                                 {1024, 4}};

  struct Runtime {
    std::string name;
    CypherEngine engine;
  };
  std::vector<Runtime> runtimes;
  for (const Config& c : configs) {
    for (const Leg& l : legs) {
      EngineOptions opts;
      opts.batch_size = l.batch;
      opts.num_threads = l.threads;
      opts.expand_strategy = c.strategy;
      opts.direction_policy = c.direction;
      runtimes.push_back({std::string(c.name) + "/b" +
                              std::to_string(l.batch) + "t" +
                              std::to_string(l.threads),
                          CypherEngine(opts)});
      runtimes.back().engine.set_default_graph(graph);
    }
  }

  Rng rng{0xF02CEDBEEFULL};
  const int kCases = 160;
  int executed = 0;
  for (int i = 0; i < kCases; ++i) {
    GeneratedQuery q = GenerateChainQuery(rng);
    SCOPED_TRACE("case " + std::to_string(i) + ": " + q.text);
    auto want = oracle.Execute(q.text);
    ASSERT_TRUE(want.ok()) << want.status().ToString();
    ++executed;
    for (auto& rt : runtimes) {
      auto got = rt.engine.Execute(q.text);
      ASSERT_TRUE(got.ok()) << rt.name << ": " << got.status().ToString();
      EXPECT_TRUE(want->table.SameBag(got->table))
          << rt.name << " diverges\noracle:\n"
          << want->table.ToString() << rt.name << ":\n"
          << got->table.ToString();
      if (q.ordered) {
        EXPECT_EQ(want->table.ToString(), got->table.ToString())
            << rt.name << " ordered output is not byte-identical";
      }
    }
  }
  EXPECT_EQ(executed, kCases);
}

// ---- GQLITE_PLAN_MODE parsing ----------------------------------------------

/// Same scoped-env helper as test_engine.cc (anonymous namespaces keep
/// the two definitions from colliding).
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = getenv(name);
    if (old != nullptr) saved_ = old;
    if (value != nullptr) {
      setenv(name, value, /*overwrite=*/1);
    } else {
      unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (saved_.has_value()) {
      setenv(name_, saved_->c_str(), 1);
    } else {
      unsetenv(name_);
    }
  }

 private:
  const char* name_;
  std::optional<std::string> saved_;
};

TEST(PlanModeEnv, TokensApplyOverProgrammaticOptions) {
  ScopedEnv env("GQLITE_PLAN_MODE", "hashjoin,force-left,greedy");
  EngineOptions opts;
  opts.expand_strategy = ExpandStrategy::kAdjacency;  // overridden
  CypherEngine engine(opts);
  EXPECT_EQ(engine.options().expand_strategy, ExpandStrategy::kHashJoin);
  EXPECT_EQ(engine.options().direction_policy, DirectionPolicy::kForceLeft);
  EXPECT_EQ(engine.options().planner, PlannerOptions::Mode::kGreedy);
  EXPECT_TRUE(engine.Execute("RETURN 1 AS one").ok());
}

TEST(PlanModeEnv, CostTokensRestoreTheDefaults) {
  ScopedEnv env("GQLITE_PLAN_MODE", "cost-expand,cost-direction,dp");
  EngineOptions opts;
  opts.expand_strategy = ExpandStrategy::kHashJoin;
  opts.direction_policy = DirectionPolicy::kForceRight;
  CypherEngine engine(opts);
  EXPECT_EQ(engine.options().expand_strategy, ExpandStrategy::kCost);
  EXPECT_EQ(engine.options().direction_policy, DirectionPolicy::kCost);
  EXPECT_EQ(engine.options().planner, PlannerOptions::Mode::kDpStarts);
}

TEST(PlanModeEnv, UnknownTokenIsAClearErrorNotAClamp) {
  for (const char* garbage : {"fastest", "hash join", "adjacency,", ",",
                              "adjacency;hashjoin", "FORCE-LEFT"}) {
    ScopedEnv env("GQLITE_PLAN_MODE", garbage);
    CypherEngine engine;
    auto r = engine.Execute("RETURN 1 AS one");
    ASSERT_FALSE(r.ok()) << "accepted GQLITE_PLAN_MODE=" << garbage;
    EXPECT_NE(r.status().ToString().find("GQLITE_PLAN_MODE"),
              std::string::npos)
        << r.status().ToString();
  }
}

}  // namespace
}  // namespace gqlite
