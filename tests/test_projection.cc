// Projection/aggregation tests (the RETURN/WITH rules of Figures 6 and 7
// plus DISTINCT / ORDER BY / SKIP / LIMIT and implicit-grouping
// aggregation as described in §3).

#include <gtest/gtest.h>

#include "src/core/engine.h"

namespace gqlite {
namespace {

class ProjectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(engine_
                    .Execute("UNWIND [[1, 'a'], [2, 'b'], [2, 'a'], "
                             "[3, 'b'], [null, 'a']] AS row "
                             "CREATE (:N {v: row[0], g: row[1]})")
                    .ok());
  }
  Table Run(const std::string& q) {
    auto r = engine_.Execute(q);
    EXPECT_TRUE(r.ok()) << q << ": " << r.status().ToString();
    return r.ok() ? std::move(r->table) : Table();
  }
  CypherEngine engine_;
};

TEST_F(ProjectionTest, ImplicitGroupingKeys) {
  Table t = Run("MATCH (n:N) RETURN n.g AS g, count(n.v) AS c ORDER BY g");
  ASSERT_EQ(t.NumRows(), 2u);
  EXPECT_EQ(t.rows()[0][0].AsString(), "a");
  EXPECT_EQ(t.rows()[0][1].AsInt(), 2);  // count skips the null v
  EXPECT_EQ(t.rows()[1][0].AsString(), "b");
  EXPECT_EQ(t.rows()[1][1].AsInt(), 2);
}

TEST_F(ProjectionTest, CountStarCountsRows) {
  Table t = Run("MATCH (n:N) RETURN n.g AS g, count(*) AS c ORDER BY g");
  EXPECT_EQ(t.rows()[0][1].AsInt(), 3);  // null v still a row
}

TEST_F(ProjectionTest, GlobalAggregationOnEmptyInput) {
  Table t = Run("MATCH (n:Missing) RETURN count(*) AS c, sum(n.v) AS s, "
                "min(n.v) AS mn, collect(n.v) AS vs, avg(n.v) AS a");
  ASSERT_EQ(t.NumRows(), 1u);
  EXPECT_EQ(t.rows()[0][0].AsInt(), 0);
  EXPECT_EQ(t.rows()[0][1].AsInt(), 0);     // sum of nothing = 0
  EXPECT_TRUE(t.rows()[0][2].is_null());    // min of nothing = null
  EXPECT_TRUE(t.rows()[0][3].AsList().empty());
  EXPECT_TRUE(t.rows()[0][4].is_null());
}

TEST_F(ProjectionTest, GroupedAggregationOnEmptyInputGivesNoRows) {
  Table t = Run("MATCH (n:Missing) RETURN n.g AS g, count(*) AS c");
  EXPECT_EQ(t.NumRows(), 0u);
}

TEST_F(ProjectionTest, NullsGroupTogether) {
  Table t = Run("MATCH (n:N) RETURN n.v AS v, count(*) AS c ORDER BY v");
  // Groups: 1, 2, 3, null → 4 groups; null sorts last.
  ASSERT_EQ(t.NumRows(), 4u);
  EXPECT_TRUE(t.rows()[3][0].is_null());
  EXPECT_EQ(t.rows()[3][1].AsInt(), 1);
}

TEST_F(ProjectionTest, AggregatesSkipNulls) {
  Table t = Run("MATCH (n:N) RETURN sum(n.v) AS s, avg(n.v) AS a, "
                "min(n.v) AS mn, max(n.v) AS mx, collect(n.v) AS vs");
  EXPECT_EQ(t.rows()[0][0].AsInt(), 8);           // 1+2+2+3
  EXPECT_DOUBLE_EQ(t.rows()[0][1].AsFloat(), 2.0);
  EXPECT_EQ(t.rows()[0][2].AsInt(), 1);
  EXPECT_EQ(t.rows()[0][3].AsInt(), 3);
  EXPECT_EQ(t.rows()[0][4].AsList().size(), 4u);  // nulls not collected
}

TEST_F(ProjectionTest, DistinctAggregates) {
  Table t = Run("MATCH (n:N) RETURN count(DISTINCT n.v) AS dv, "
                "collect(DISTINCT n.g) AS gs, sum(DISTINCT n.v) AS sv");
  EXPECT_EQ(t.rows()[0][0].AsInt(), 3);  // 1, 2, 3
  EXPECT_EQ(t.rows()[0][1].AsList().size(), 2u);
  EXPECT_EQ(t.rows()[0][2].AsInt(), 6);
}

TEST_F(ProjectionTest, AggregateInsideExpression) {
  Table t = Run("MATCH (n:N) RETURN count(*) * 10 + 1 AS c");
  EXPECT_EQ(t.rows()[0][0].AsInt(), 51);
  Table t2 = Run("MATCH (n:N) RETURN n.g AS g, "
                 "count(*) + count(DISTINCT n.v) AS mixed ORDER BY g");
  EXPECT_EQ(t2.rows()[0][1].AsInt(), 3 + 2);  // group a: rows 3, distinct 1,2
}

TEST_F(ProjectionTest, SumIntStaysIntSumFloatIsFloat) {
  Table t = Run("UNWIND [1, 2] AS x RETURN sum(x) AS s");
  EXPECT_TRUE(t.rows()[0][0].is_int());
  Table t2 = Run("UNWIND [1, 2.5] AS x RETURN sum(x) AS s");
  EXPECT_TRUE(t2.rows()[0][0].is_float());
  EXPECT_DOUBLE_EQ(t2.rows()[0][0].AsFloat(), 3.5);
}

TEST_F(ProjectionTest, MinMaxUseOrderability) {
  Table t = Run("UNWIND [3, 'b', 1, 'a'] AS x RETURN min(x) AS mn, "
                "max(x) AS mx");
  // Orderability: strings sort before numbers.
  EXPECT_EQ(t.rows()[0][0].AsString(), "a");
  EXPECT_EQ(t.rows()[0][1].AsInt(), 3);
}

TEST_F(ProjectionTest, DistinctRows) {
  Table t = Run("MATCH (n:N) RETURN DISTINCT n.g AS g ORDER BY g");
  ASSERT_EQ(t.NumRows(), 2u);
  Table t2 = Run("MATCH (n:N) WITH DISTINCT n.v AS v RETURN count(*) AS c");
  EXPECT_EQ(t2.rows()[0][0].AsInt(), 4);  // 1, 2, 3, null
}

TEST_F(ProjectionTest, OrderBySkipLimit) {
  Table t = Run("MATCH (n:N) WHERE n.v IS NOT NULL "
                "RETURN n.v AS v ORDER BY v DESC SKIP 1 LIMIT 2");
  ASSERT_EQ(t.NumRows(), 2u);
  EXPECT_EQ(t.rows()[0][0].AsInt(), 2);
  EXPECT_EQ(t.rows()[1][0].AsInt(), 2);
}

TEST_F(ProjectionTest, OrderByMultipleKeysMixedDirections) {
  Table t = Run("MATCH (n:N) WHERE n.v IS NOT NULL "
                "RETURN n.g AS g, n.v AS v ORDER BY g ASC, v DESC");
  ASSERT_EQ(t.NumRows(), 4u);
  EXPECT_EQ(t.rows()[0][0].AsString(), "a");
  EXPECT_EQ(t.rows()[0][1].AsInt(), 2);
  EXPECT_EQ(t.rows()[1][1].AsInt(), 1);
  EXPECT_EQ(t.rows()[2][0].AsString(), "b");
  EXPECT_EQ(t.rows()[2][1].AsInt(), 3);
}

TEST_F(ProjectionTest, OrderByPreProjectionVariable) {
  // Non-aggregating projection: ORDER BY may use the pre-projection vars.
  Table t = Run("MATCH (n:N) WHERE n.v IS NOT NULL "
                "RETURN n.g AS g ORDER BY n.v DESC LIMIT 1");
  EXPECT_EQ(t.rows()[0][0].AsString(), "b");  // v=3 is 'b'
}

TEST_F(ProjectionTest, OrderByProjectedExpressionText) {
  // Aggregating projection: ORDER BY resolves the projected column by its
  // derived name.
  Table t = Run("MATCH (n:N) RETURN n.g, count(*) AS c ORDER BY n.g DESC");
  EXPECT_EQ(t.rows()[0][0].AsString(), "b");
}

TEST_F(ProjectionTest, SkipLimitValidation) {
  auto bad = engine_.Execute("MATCH (n:N) RETURN n.v LIMIT -1");
  EXPECT_FALSE(bad.ok());
  auto bad2 = engine_.Execute("MATCH (n:N) RETURN n.v SKIP 'x'");
  EXPECT_FALSE(bad2.ok());
  Table t = Run("MATCH (n:N) RETURN n.v SKIP 99");
  EXPECT_EQ(t.NumRows(), 0u);
}

TEST_F(ProjectionTest, WithWhereFiltersAfterProjection) {
  Table t = Run("MATCH (n:N) WITH n.v AS v WHERE v > 1 RETURN count(*) AS c");
  EXPECT_EQ(t.rows()[0][0].AsInt(), 3);  // 2, 2, 3 (null fails v > 1)
}

TEST_F(ProjectionTest, StarKeepsAllColumns) {
  Table t = Run("MATCH (n:N) WITH * RETURN count(n) AS c");
  EXPECT_EQ(t.rows()[0][0].AsInt(), 5);
  Table t2 = Run("UNWIND [1] AS a UNWIND [2] AS b RETURN *");
  EXPECT_EQ(t2.fields(), (std::vector<std::string>{"a", "b"}));
}

TEST_F(ProjectionTest, StarPlusAggregateGroupsByAllColumns) {
  Table t = Run("MATCH (n:N) WITH n.g AS g WITH *, count(*) AS c "
                "RETURN g, c ORDER BY g");
  ASSERT_EQ(t.NumRows(), 2u);
  EXPECT_EQ(t.rows()[0][1].AsInt(), 3);
}

TEST_F(ProjectionTest, CollectPreservesInputOrderWithinGroup) {
  Table t = Run("UNWIND [3, 1, 2] AS x RETURN collect(x) AS xs");
  const ValueList& xs = t.rows()[0][0].AsList();
  ASSERT_EQ(xs.size(), 3u);
  EXPECT_EQ(xs[0].AsInt(), 3);
  EXPECT_EQ(xs[1].AsInt(), 1);
  EXPECT_EQ(xs[2].AsInt(), 2);
}

TEST_F(ProjectionTest, UnwindNonListYieldsSingleRow) {
  // The paper's Figure 7 rule (including the null case; DESIGN.md).
  Table t = Run("UNWIND 42 AS x RETURN x");
  ASSERT_EQ(t.NumRows(), 1u);
  EXPECT_EQ(t.rows()[0][0].AsInt(), 42);
  Table t2 = Run("UNWIND null AS x RETURN x");
  ASSERT_EQ(t2.NumRows(), 1u);
  EXPECT_TRUE(t2.rows()[0][0].is_null());
  Table t3 = Run("UNWIND [] AS x RETURN x");
  EXPECT_EQ(t3.NumRows(), 0u);
}

TEST_F(ProjectionTest, NestedUnwindMultiplies) {
  Table t = Run("UNWIND [1, 2] AS x UNWIND [10, 20] AS y "
                "RETURN x * y AS p ORDER BY p");
  ASSERT_EQ(t.NumRows(), 4u);
  EXPECT_EQ(t.rows()[0][0].AsInt(), 10);
  EXPECT_EQ(t.rows()[3][0].AsInt(), 40);
}

}  // namespace
}  // namespace gqlite
