// Plan-shape regression fixtures: canonical graphs whose statistics make
// one plan clearly cheapest, with the EXPLAIN output asserted — operator
// choice (Expand vs HashJoinExpand), anchor selection, expand direction,
// and the per-operator `est. rows` annotations. A cost-model change that
// flips one of these shapes should have to explain itself here.

#include <gtest/gtest.h>

#include <string>

#include "src/core/engine.h"

namespace gqlite {
namespace {

/// 60 :A nodes, 2 :B nodes, one :R edge into each :B. Anchoring at :B
/// and expanding right-to-left touches ~2 rows; left-to-right ~60.
CypherEngine MakeLopsidedEngine(EngineOptions opts) {
  CypherEngine engine(std::move(opts));
  auto g = std::make_shared<PropertyGraph>();
  std::vector<NodeId> as;
  for (int i = 0; i < 60; ++i) {
    as.push_back(g->CreateNode({"A"}, {{"id", Value::Int(i)}}));
  }
  for (int i = 0; i < 2; ++i) {
    NodeId b = g->CreateNode({"B"}, {{"id", Value::Int(100 + i)}});
    EXPECT_TRUE(g->CreateRelationship(as[i], b, "R", {}).ok());
  }
  engine.set_default_graph(g);
  return engine;
}

TEST(PlanShapes, CostModeAnchorsAtTheSelectiveLabel) {
  CypherEngine engine = MakeLopsidedEngine(EngineOptions{});
  auto e = engine.Explain("MATCH (a:A)-[:R]->(b:B) RETURN a.id");
  ASSERT_TRUE(e.ok()) << e.status().ToString();
  // Anchor at :B (2 nodes), expand the hop right-to-left.
  EXPECT_NE(e->find("NodeByLabelScan(b:B)"), std::string::npos) << *e;
  EXPECT_NE(e->find("Expand(b<-:R<-a)"), std::string::npos) << *e;
  EXPECT_NE(e->find("est. rows"), std::string::npos) << *e;
}

TEST(PlanShapes, ForceRightOverridesTheCostChoice) {
  EngineOptions opts;
  opts.direction_policy = DirectionPolicy::kForceRight;
  CypherEngine engine = MakeLopsidedEngine(std::move(opts));
  auto e = engine.Explain("MATCH (a:A)-[:R]->(b:B) RETURN a.id");
  ASSERT_TRUE(e.ok()) << e.status().ToString();
  EXPECT_NE(e->find("NodeByLabelScan(a:A)"), std::string::npos) << *e;
  EXPECT_NE(e->find("Expand(a->:R->b)"), std::string::npos) << *e;
}

TEST(PlanShapes, UniquePropertyEqualityWinsTheAnchor) {
  CypherEngine engine = MakeLopsidedEngine(EngineOptions{});
  // b:B is rare (2 nodes), but a.id = 3 is unique (NDV 62 over 62
  // nodes): ~60/62 < 2 candidate rows, so the anchor goes to a.
  auto e = engine.Explain(
      "MATCH (a:A)-[:R]->(b:B) WHERE a.id = 3 RETURN b.id");
  ASSERT_TRUE(e.ok()) << e.status().ToString();
  EXPECT_NE(e->find("NodeByLabelScan(a:A)"), std::string::npos) << *e;
  EXPECT_NE(e->find("Expand(a->:R->b)"), std::string::npos) << *e;
}

/// Hub nodes drowning in untyped :X edges while :T is rare: an
/// adjacency expand from (a) scans ~200 edges per row to find the one
/// :T, a hash-join expand reads the 10-row :T relationship store once.
CypherEngine MakeNoisyAdjacencyEngine(EngineOptions opts) {
  CypherEngine engine(std::move(opts));
  auto g = std::make_shared<PropertyGraph>();
  std::vector<NodeId> nodes;
  for (int i = 0; i < 40; ++i) {
    nodes.push_back(g->CreateNode({"N"}, {{"id", Value::Int(i)}}));
  }
  for (int i = 0; i < 40; ++i) {
    for (int e = 0; e < 50; ++e) {
      EXPECT_TRUE(
          g->CreateRelationship(nodes[i], nodes[(i + e + 1) % 40], "X", {})
              .ok());
    }
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(
        g->CreateRelationship(nodes[i], nodes[(i + 7) % 40], "T", {}).ok());
  }
  engine.set_default_graph(g);
  return engine;
}

TEST(PlanShapes, FanOutFrontierPicksHashJoin) {
  // The hash join builds over the WHOLE relationship store, so it only
  // wins once the frontier outgrows the node count: after the :X fan-out
  // the frontier is ~2000 rows, and an adjacency expand of the :T hop
  // would rescan ~50 noisy edges per row. Direction is pinned so the DP
  // can't sidestep the scenario by walking the chain backwards.
  EngineOptions opts;
  opts.direction_policy = DirectionPolicy::kForceRight;
  CypherEngine engine = MakeNoisyAdjacencyEngine(std::move(opts));
  auto e = engine.Explain("MATCH (a:N)-[:X]->(b)-[:T]->(c) RETURN c.id");
  ASSERT_TRUE(e.ok()) << e.status().ToString();
  EXPECT_NE(e->find("HashJoinExpand"), std::string::npos) << *e;
  EXPECT_NE(e->find("Expand(a->:X->b)"), std::string::npos) << *e;
}

TEST(PlanShapes, ForcedAdjacencyOverridesTheJoinChoice) {
  EngineOptions opts;
  opts.expand_strategy = ExpandStrategy::kAdjacency;
  CypherEngine engine = MakeNoisyAdjacencyEngine(std::move(opts));
  auto e = engine.Explain("MATCH (a:N)-[:T]->(b) RETURN b.id");
  ASSERT_TRUE(e.ok()) << e.status().ToString();
  EXPECT_EQ(e->find("HashJoinExpand"), std::string::npos) << *e;
  EXPECT_NE(e->find("Expand("), std::string::npos) << *e;
}

TEST(PlanShapes, ForcedHashJoinAppliesToRigidHops) {
  EngineOptions opts;
  opts.expand_strategy = ExpandStrategy::kHashJoin;
  CypherEngine engine = MakeLopsidedEngine(std::move(opts));
  auto e = engine.Explain("MATCH (a:A)-[:R]->(b:B) RETURN a.id");
  ASSERT_TRUE(e.ok()) << e.status().ToString();
  EXPECT_NE(e->find("HashJoinExpand"), std::string::npos) << *e;
}

TEST(PlanShapes, EstimatesShrinkThroughSelectiveFilters) {
  CypherEngine engine = MakeLopsidedEngine(EngineOptions{});
  // The scan estimate reflects the label count; a filtered estimate is
  // annotated on the FilterOp and is smaller than the scan's.
  auto e = engine.Explain("MATCH (a:A) WHERE a.id = 3 RETURN a.id");
  ASSERT_TRUE(e.ok()) << e.status().ToString();
  EXPECT_NE(e->find("NodeByLabelScan(a:A)  (est. rows: 60)"),
            std::string::npos)
      << *e;
  EXPECT_NE(e->find("Filter"), std::string::npos) << *e;
}

TEST(PlanShapes, VarLengthKeepsAdjacencyUnderForcedHashJoin) {
  // HashJoinExpand has no var-length form; the force must not break
  // var-length hops (they stay VarLengthExpand).
  EngineOptions opts;
  opts.expand_strategy = ExpandStrategy::kHashJoin;
  CypherEngine engine = MakeLopsidedEngine(std::move(opts));
  auto e = engine.Explain("MATCH (a:B)-[:R*1..2]->(b) RETURN b.id");
  ASSERT_TRUE(e.ok()) << e.status().ToString();
  EXPECT_NE(e->find("VarLengthExpand"), std::string::npos) << *e;
  EXPECT_EQ(e->find("HashJoinExpand"), std::string::npos) << *e;
}

}  // namespace
}  // namespace gqlite
