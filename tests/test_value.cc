#include <gtest/gtest.h>

#include <cmath>

#include "src/value/value.h"
#include "src/value/value_compare.h"
#include "src/value/value_format.h"

namespace gqlite {
namespace {

TEST(Value, TypeTags) {
  EXPECT_EQ(Value::Null().type(), ValueType::kNull);
  EXPECT_EQ(Value::Bool(true).type(), ValueType::kBool);
  EXPECT_EQ(Value::Int(3).type(), ValueType::kInt);
  EXPECT_EQ(Value::Float(3.5).type(), ValueType::kFloat);
  EXPECT_EQ(Value::String("x").type(), ValueType::kString);
  EXPECT_EQ(Value::EmptyList().type(), ValueType::kList);
  EXPECT_EQ(Value::MakeMap({}).type(), ValueType::kMap);
  EXPECT_EQ(Value::Node(NodeId{1}).type(), ValueType::kNode);
  EXPECT_EQ(Value::Relationship(RelId{1}).type(), ValueType::kRelationship);
  EXPECT_EQ(Value::MakePath(Path{{NodeId{0}}, {}}).type(), ValueType::kPath);
  EXPECT_EQ(Value::Temporal(Date{0}).type(), ValueType::kDate);
  EXPECT_EQ(Value::Temporal(Duration{}).type(), ValueType::kDuration);
  EXPECT_TRUE(Value::Temporal(Date{0}).is_temporal());
  EXPECT_FALSE(Value::Int(1).is_temporal());
}

TEST(Value, Accessors) {
  EXPECT_EQ(Value::Int(42).AsInt(), 42);
  EXPECT_DOUBLE_EQ(Value::Float(2.5).AsFloat(), 2.5);
  EXPECT_DOUBLE_EQ(Value::Int(2).AsNumber(), 2.0);
  EXPECT_EQ(Value::String("hi").AsString(), "hi");
  Value l = Value::MakeList({Value::Int(1), Value::Int(2)});
  EXPECT_EQ(l.AsList().size(), 2u);
  Value m = Value::MakeMap({{"a", Value::Int(1)}});
  EXPECT_EQ(m.AsMap().at("a").AsInt(), 1);
}

// ---- 3VL connective truth tables (parameterized over the full grid) ------

struct TriCase {
  Tri a, b, and_r, or_r, xor_r;
};

class TriLogicTest : public ::testing::TestWithParam<TriCase> {};

TEST_P(TriLogicTest, TruthTable) {
  const TriCase& c = GetParam();
  EXPECT_EQ(TriAnd(c.a, c.b), c.and_r);
  EXPECT_EQ(TriOr(c.a, c.b), c.or_r);
  EXPECT_EQ(TriXor(c.a, c.b), c.xor_r);
  // Commutativity.
  EXPECT_EQ(TriAnd(c.b, c.a), c.and_r);
  EXPECT_EQ(TriOr(c.b, c.a), c.or_r);
  EXPECT_EQ(TriXor(c.b, c.a), c.xor_r);
}

constexpr Tri F = Tri::kFalse, N = Tri::kNull, T = Tri::kTrue;

INSTANTIATE_TEST_SUITE_P(
    SqlTruthTables, TriLogicTest,
    ::testing::Values(TriCase{T, T, T, T, F}, TriCase{T, F, F, T, T},
                      TriCase{T, N, N, T, N}, TriCase{F, F, F, F, F},
                      TriCase{F, N, F, N, N}, TriCase{N, N, N, N, N}));

TEST(TriLogic, Not) {
  EXPECT_EQ(TriNot(T), F);
  EXPECT_EQ(TriNot(F), T);
  EXPECT_EQ(TriNot(N), N);
}

// ---- Equality (`=`) -------------------------------------------------------

TEST(ValueEquals, NullPropagates) {
  EXPECT_EQ(ValueEquals(Value::Null(), Value::Null()), N);
  EXPECT_EQ(ValueEquals(Value::Null(), Value::Int(1)), N);
  EXPECT_EQ(ValueEquals(Value::Int(1), Value::Null()), N);
}

TEST(ValueEquals, NumbersAcrossIntFloat) {
  EXPECT_EQ(ValueEquals(Value::Int(1), Value::Float(1.0)), T);
  EXPECT_EQ(ValueEquals(Value::Int(1), Value::Int(2)), F);
  EXPECT_EQ(ValueEquals(Value::Float(0.5), Value::Float(0.5)), T);
  double nan = std::nan("");
  EXPECT_EQ(ValueEquals(Value::Float(nan), Value::Float(nan)), F);
}

TEST(ValueEquals, MixedTypesAreFalse) {
  EXPECT_EQ(ValueEquals(Value::Int(1), Value::String("1")), F);
  EXPECT_EQ(ValueEquals(Value::Bool(true), Value::Int(1)), F);
}

TEST(ValueEquals, ListsRecurseWith3VL) {
  Value a = Value::MakeList({Value::Int(1), Value::Null()});
  Value b = Value::MakeList({Value::Int(1), Value::Int(2)});
  Value c = Value::MakeList({Value::Int(9), Value::Null()});
  EXPECT_EQ(ValueEquals(a, b), N);  // 1=1 true, null=2 null → null
  EXPECT_EQ(ValueEquals(a, c), F);  // 1=9 false dominates
  EXPECT_EQ(ValueEquals(b, b), T);
  EXPECT_EQ(ValueEquals(a, Value::MakeList({Value::Int(1)})), F);  // lengths
}

TEST(ValueEquals, Maps) {
  Value a = Value::MakeMap({{"x", Value::Int(1)}, {"y", Value::Null()}});
  Value b = Value::MakeMap({{"x", Value::Int(1)}, {"y", Value::Int(2)}});
  Value c = Value::MakeMap({{"x", Value::Int(1)}, {"z", Value::Int(2)}});
  EXPECT_EQ(ValueEquals(a, b), N);
  EXPECT_EQ(ValueEquals(a, c), F);  // different key sets
  EXPECT_EQ(ValueEquals(b, b), T);
}

TEST(ValueEquals, EntitiesById) {
  EXPECT_EQ(ValueEquals(Value::Node(NodeId{3}), Value::Node(NodeId{3})), T);
  EXPECT_EQ(ValueEquals(Value::Node(NodeId{3}), Value::Node(NodeId{4})), F);
  EXPECT_EQ(ValueEquals(Value::Relationship(RelId{1}),
                        Value::Relationship(RelId{1})),
            T);
}

// ---- Ordering comparison (`<`) -------------------------------------------

TEST(ValueLess, Numbers) {
  EXPECT_EQ(ValueLess(Value::Int(1), Value::Int(2)), T);
  EXPECT_EQ(ValueLess(Value::Int(2), Value::Float(1.5)), F);
  EXPECT_EQ(ValueLess(Value::Float(1.25), Value::Int(2)), T);
}

TEST(ValueLess, IncomparableTypesAreNull) {
  EXPECT_EQ(ValueLess(Value::Int(1), Value::String("a")), N);
  EXPECT_EQ(ValueLess(Value::Bool(false), Value::Int(1)), N);
  EXPECT_EQ(ValueLess(Value::Null(), Value::Int(1)), N);
}

TEST(ValueLess, StringsAndBooleans) {
  EXPECT_EQ(ValueLess(Value::String("abc"), Value::String("abd")), T);
  EXPECT_EQ(ValueLess(Value::Bool(false), Value::Bool(true)), T);
  EXPECT_EQ(ValueLess(Value::Bool(true), Value::Bool(false)), F);
}

TEST(ValueLess, Temporals) {
  EXPECT_EQ(ValueLess(Value::Temporal(Date{10}), Value::Temporal(Date{20})), T);
  EXPECT_EQ(ValueLess(Value::Temporal(Date{10}),
                      Value::Temporal(LocalTime{5})),
            N);  // different temporal families don't compare
}

// ---- Equivalence (DISTINCT/grouping) --------------------------------------

TEST(ValueEquivalent, NullAndNaN) {
  EXPECT_TRUE(ValueEquivalent(Value::Null(), Value::Null()));
  double nan = std::nan("");
  EXPECT_TRUE(ValueEquivalent(Value::Float(nan), Value::Float(nan)));
  EXPECT_FALSE(ValueEquivalent(Value::Null(), Value::Int(0)));
  EXPECT_TRUE(ValueEquivalent(Value::Int(1), Value::Float(1.0)));
}

TEST(ValueEquivalent, Containers) {
  Value a = Value::MakeList({Value::Null(), Value::Int(1)});
  Value b = Value::MakeList({Value::Null(), Value::Int(1)});
  EXPECT_TRUE(ValueEquivalent(a, b));
  EXPECT_FALSE(ValueEquivalent(a, Value::MakeList({Value::Int(1)})));
}

TEST(ValueHash, ConsistentWithEquivalence) {
  EXPECT_EQ(ValueHash(Value::Int(1)), ValueHash(Value::Float(1.0)));
  Value a = Value::MakeList({Value::Null(), Value::Int(1)});
  Value b = Value::MakeList({Value::Null(), Value::Int(1)});
  EXPECT_EQ(ValueHash(a), ValueHash(b));
}

// ---- Global orderability ---------------------------------------------------

TEST(ValueOrder, TypeBuckets) {
  // MAP < NODE < REL < LIST < ... < STRING < BOOLEAN < NUMBER < null.
  Value map = Value::MakeMap({});
  Value node = Value::Node(NodeId{0});
  Value rel = Value::Relationship(RelId{0});
  Value list = Value::EmptyList();
  Value str = Value::String("s");
  Value boolean = Value::Bool(false);
  Value num = Value::Int(0);
  Value null = Value::Null();
  std::vector<Value> order = {map, node, rel, list, str, boolean, num, null};
  for (size_t i = 0; i < order.size(); ++i) {
    for (size_t j = 0; j < order.size(); ++j) {
      int c = ValueOrder(order[i], order[j]);
      if (i < j) {
        EXPECT_LT(c, 0) << i << " vs " << j;
      } else if (i > j) {
        EXPECT_GT(c, 0) << i << " vs " << j;
      } else {
        EXPECT_EQ(c, 0) << i;
      }
    }
  }
}

TEST(ValueOrder, NumbersInterleaveAndNaNLast) {
  EXPECT_LT(ValueOrder(Value::Int(1), Value::Float(1.5)), 0);
  EXPECT_LT(ValueOrder(Value::Float(0.5), Value::Int(1)), 0);
  double inf = std::numeric_limits<double>::infinity();
  double nan = std::nan("");
  EXPECT_LT(ValueOrder(Value::Float(inf), Value::Float(nan)), 0);
  EXPECT_EQ(ValueOrder(Value::Float(nan), Value::Float(nan)), 0);
}

TEST(ValueOrder, TotalOrderProperties) {
  // Orderability must be a total order on a mixed value set: antisymmetric,
  // transitive, consistent with equivalence.
  std::vector<Value> vals = {
      Value::Null(),
      Value::Int(-3),
      Value::Int(7),
      Value::Float(0.5),
      Value::Float(7.0),
      Value::String(""),
      Value::String("zz"),
      Value::Bool(true),
      Value::MakeList({Value::Int(1)}),
      Value::MakeList({Value::Int(1), Value::Int(2)}),
      Value::MakeMap({{"a", Value::Int(1)}}),
      Value::Node(NodeId{2}),
      Value::Relationship(RelId{5}),
      Value::Temporal(Date{100}),
      Value::Temporal(Duration::Make(0, 1, 0, 0)),
  };
  for (const Value& a : vals) {
    for (const Value& b : vals) {
      EXPECT_EQ(ValueOrder(a, b), -ValueOrder(b, a));
      for (const Value& c : vals) {
        if (ValueOrder(a, b) <= 0 && ValueOrder(b, c) <= 0) {
          EXPECT_LE(ValueOrder(a, c), 0);
        }
      }
    }
  }
}

// ---- Formatting -------------------------------------------------------------

TEST(Format, Scalars) {
  EXPECT_EQ(Value::Null().ToString(), "null");
  EXPECT_EQ(Value::Bool(true).ToString(), "true");
  EXPECT_EQ(Value::Int(-5).ToString(), "-5");
  EXPECT_EQ(Value::Float(2.0).ToString(), "2.0");
  EXPECT_EQ(Value::Float(2.5).ToString(), "2.5");
  EXPECT_EQ(Value::String("hi").ToString(), "'hi'");
}

TEST(Format, Containers) {
  Value l = Value::MakeList({Value::Int(1), Value::String("a")});
  EXPECT_EQ(l.ToString(), "[1, 'a']");
  Value m = Value::MakeMap({{"k", Value::Int(1)}, {"j", Value::Null()}});
  EXPECT_EQ(m.ToString(), "{j: null, k: 1}");
}

TEST(Format, Path) {
  Path p;
  p.nodes = {NodeId{1}, NodeId{2}};
  p.rels = {RelId{7}};
  EXPECT_EQ(Value::MakePath(p).ToString(), "<(1)-[:7]-(2)>");
}

}  // namespace
}  // namespace gqlite
