#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <string>

#include "src/value/value.h"
#include "src/value/value_compare.h"
#include "src/value/value_format.h"

namespace gqlite {
namespace {

TEST(Value, TypeTags) {
  EXPECT_EQ(Value::Null().type(), ValueType::kNull);
  EXPECT_EQ(Value::Bool(true).type(), ValueType::kBool);
  EXPECT_EQ(Value::Int(3).type(), ValueType::kInt);
  EXPECT_EQ(Value::Float(3.5).type(), ValueType::kFloat);
  EXPECT_EQ(Value::String("x").type(), ValueType::kString);
  EXPECT_EQ(Value::EmptyList().type(), ValueType::kList);
  EXPECT_EQ(Value::MakeMap({}).type(), ValueType::kMap);
  EXPECT_EQ(Value::Node(NodeId{1}).type(), ValueType::kNode);
  EXPECT_EQ(Value::Relationship(RelId{1}).type(), ValueType::kRelationship);
  EXPECT_EQ(Value::MakePath(Path{{NodeId{0}}, {}}).type(), ValueType::kPath);
  EXPECT_EQ(Value::Temporal(Date{0}).type(), ValueType::kDate);
  EXPECT_EQ(Value::Temporal(Duration{}).type(), ValueType::kDuration);
  EXPECT_TRUE(Value::Temporal(Date{0}).is_temporal());
  EXPECT_FALSE(Value::Int(1).is_temporal());
}

TEST(Value, Accessors) {
  EXPECT_EQ(Value::Int(42).AsInt(), 42);
  EXPECT_DOUBLE_EQ(Value::Float(2.5).AsFloat(), 2.5);
  EXPECT_DOUBLE_EQ(Value::Int(2).AsNumber(), 2.0);
  EXPECT_EQ(Value::String("hi").AsString(), "hi");
  Value l = Value::MakeList({Value::Int(1), Value::Int(2)});
  EXPECT_EQ(l.AsList().size(), 2u);
  Value m = Value::MakeMap({{"a", Value::Int(1)}});
  EXPECT_EQ(m.AsMap().at("a").AsInt(), 1);
}

// ---- 3VL connective truth tables (parameterized over the full grid) ------

struct TriCase {
  Tri a, b, and_r, or_r, xor_r;
};

class TriLogicTest : public ::testing::TestWithParam<TriCase> {};

TEST_P(TriLogicTest, TruthTable) {
  const TriCase& c = GetParam();
  EXPECT_EQ(TriAnd(c.a, c.b), c.and_r);
  EXPECT_EQ(TriOr(c.a, c.b), c.or_r);
  EXPECT_EQ(TriXor(c.a, c.b), c.xor_r);
  // Commutativity.
  EXPECT_EQ(TriAnd(c.b, c.a), c.and_r);
  EXPECT_EQ(TriOr(c.b, c.a), c.or_r);
  EXPECT_EQ(TriXor(c.b, c.a), c.xor_r);
}

constexpr Tri F = Tri::kFalse, N = Tri::kNull, T = Tri::kTrue;

INSTANTIATE_TEST_SUITE_P(
    SqlTruthTables, TriLogicTest,
    ::testing::Values(TriCase{T, T, T, T, F}, TriCase{T, F, F, T, T},
                      TriCase{T, N, N, T, N}, TriCase{F, F, F, F, F},
                      TriCase{F, N, F, N, N}, TriCase{N, N, N, N, N}));

TEST(TriLogic, Not) {
  EXPECT_EQ(TriNot(T), F);
  EXPECT_EQ(TriNot(F), T);
  EXPECT_EQ(TriNot(N), N);
}

// ---- Equality (`=`) -------------------------------------------------------

TEST(ValueEquals, NullPropagates) {
  EXPECT_EQ(ValueEquals(Value::Null(), Value::Null()), N);
  EXPECT_EQ(ValueEquals(Value::Null(), Value::Int(1)), N);
  EXPECT_EQ(ValueEquals(Value::Int(1), Value::Null()), N);
}

TEST(ValueEquals, NumbersAcrossIntFloat) {
  EXPECT_EQ(ValueEquals(Value::Int(1), Value::Float(1.0)), T);
  EXPECT_EQ(ValueEquals(Value::Int(1), Value::Int(2)), F);
  EXPECT_EQ(ValueEquals(Value::Float(0.5), Value::Float(0.5)), T);
  double nan = std::nan("");
  EXPECT_EQ(ValueEquals(Value::Float(nan), Value::Float(nan)), F);
}

TEST(ValueEquals, LargeIntFloatComparisonIsExact) {
  // 2^53 is the first double where n and n+1 collapse to the same value.
  // Comparison must use the mathematical values, not a lossy cast: the
  // old double-cast path reported 2^53 + 1 = 2^53.0 as true.
  const int64_t two53 = int64_t{1} << 53;
  EXPECT_EQ(ValueEquals(Value::Int(two53 + 1), Value::Float(1.0 * two53)), F);
  EXPECT_EQ(ValueEquals(Value::Int(two53), Value::Float(1.0 * two53)), T);
  // INT64_MAX is not a double; the nearest double is 2^63, outside int64.
  const int64_t imax = std::numeric_limits<int64_t>::max();
  EXPECT_EQ(ValueEquals(Value::Int(imax), Value::Float(9223372036854775808.0)),
            F);
  EXPECT_EQ(ValueLess(Value::Int(imax), Value::Float(9223372036854775808.0)),
            T);
  EXPECT_EQ(ValueLess(Value::Int(two53 + 1), Value::Float(1.0 * two53)), F);
  EXPECT_EQ(ValueLess(Value::Float(1.0 * two53), Value::Int(two53 + 1)), T);
  // Fractional doubles sit strictly between neighboring ints.
  EXPECT_EQ(ValueLess(Value::Int(2), Value::Float(2.5)), T);
  EXPECT_EQ(ValueLess(Value::Int(-2), Value::Float(-2.5)), F);
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(ValueLess(Value::Int(imax), Value::Float(inf)), T);
  EXPECT_EQ(ValueLess(Value::Float(-inf), Value::Int(imax)), T);
}

TEST(ValueOrder, LargeIntFloatOrderIsExact) {
  const int64_t two53 = int64_t{1} << 53;
  EXPECT_GT(ValueOrder(Value::Int(two53 + 1), Value::Float(1.0 * two53)), 0);
  EXPECT_LT(ValueOrder(Value::Float(1.0 * two53), Value::Int(two53 + 1)), 0);
  // Equal mathematical value: int sorts before float (deterministic).
  EXPECT_LT(ValueOrder(Value::Int(two53), Value::Float(1.0 * two53)), 0);
  EXPECT_FALSE(ValueEquivalent(Value::Int(two53 + 1),
                               Value::Float(1.0 * two53)));
  EXPECT_TRUE(ValueEquivalent(Value::Int(two53), Value::Float(1.0 * two53)));
}

TEST(ValueEquals, MixedTypesAreFalse) {
  EXPECT_EQ(ValueEquals(Value::Int(1), Value::String("1")), F);
  EXPECT_EQ(ValueEquals(Value::Bool(true), Value::Int(1)), F);
}

TEST(ValueEquals, ListsRecurseWith3VL) {
  Value a = Value::MakeList({Value::Int(1), Value::Null()});
  Value b = Value::MakeList({Value::Int(1), Value::Int(2)});
  Value c = Value::MakeList({Value::Int(9), Value::Null()});
  EXPECT_EQ(ValueEquals(a, b), N);  // 1=1 true, null=2 null → null
  EXPECT_EQ(ValueEquals(a, c), F);  // 1=9 false dominates
  EXPECT_EQ(ValueEquals(b, b), T);
  EXPECT_EQ(ValueEquals(a, Value::MakeList({Value::Int(1)})), F);  // lengths
}

TEST(ValueEquals, Maps) {
  Value a = Value::MakeMap({{"x", Value::Int(1)}, {"y", Value::Null()}});
  Value b = Value::MakeMap({{"x", Value::Int(1)}, {"y", Value::Int(2)}});
  Value c = Value::MakeMap({{"x", Value::Int(1)}, {"z", Value::Int(2)}});
  EXPECT_EQ(ValueEquals(a, b), N);
  EXPECT_EQ(ValueEquals(a, c), F);  // different key sets
  EXPECT_EQ(ValueEquals(b, b), T);
}

TEST(ValueEquals, EntitiesById) {
  EXPECT_EQ(ValueEquals(Value::Node(NodeId{3}), Value::Node(NodeId{3})), T);
  EXPECT_EQ(ValueEquals(Value::Node(NodeId{3}), Value::Node(NodeId{4})), F);
  EXPECT_EQ(ValueEquals(Value::Relationship(RelId{1}),
                        Value::Relationship(RelId{1})),
            T);
}

// ---- Ordering comparison (`<`) -------------------------------------------

TEST(ValueLess, Numbers) {
  EXPECT_EQ(ValueLess(Value::Int(1), Value::Int(2)), T);
  EXPECT_EQ(ValueLess(Value::Int(2), Value::Float(1.5)), F);
  EXPECT_EQ(ValueLess(Value::Float(1.25), Value::Int(2)), T);
}

TEST(ValueLess, IncomparableTypesAreNull) {
  EXPECT_EQ(ValueLess(Value::Int(1), Value::String("a")), N);
  EXPECT_EQ(ValueLess(Value::Bool(false), Value::Int(1)), N);
  EXPECT_EQ(ValueLess(Value::Null(), Value::Int(1)), N);
}

TEST(ValueLess, StringsAndBooleans) {
  EXPECT_EQ(ValueLess(Value::String("abc"), Value::String("abd")), T);
  EXPECT_EQ(ValueLess(Value::Bool(false), Value::Bool(true)), T);
  EXPECT_EQ(ValueLess(Value::Bool(true), Value::Bool(false)), F);
}

TEST(ValueLess, Temporals) {
  EXPECT_EQ(ValueLess(Value::Temporal(Date{10}), Value::Temporal(Date{20})), T);
  EXPECT_EQ(ValueLess(Value::Temporal(Date{10}),
                      Value::Temporal(LocalTime{5})),
            N);  // different temporal families don't compare
}

// ---- Equivalence (DISTINCT/grouping) --------------------------------------

TEST(ValueEquivalent, NullAndNaN) {
  EXPECT_TRUE(ValueEquivalent(Value::Null(), Value::Null()));
  double nan = std::nan("");
  EXPECT_TRUE(ValueEquivalent(Value::Float(nan), Value::Float(nan)));
  EXPECT_FALSE(ValueEquivalent(Value::Null(), Value::Int(0)));
  EXPECT_TRUE(ValueEquivalent(Value::Int(1), Value::Float(1.0)));
}

TEST(ValueEquivalent, Containers) {
  Value a = Value::MakeList({Value::Null(), Value::Int(1)});
  Value b = Value::MakeList({Value::Null(), Value::Int(1)});
  EXPECT_TRUE(ValueEquivalent(a, b));
  EXPECT_FALSE(ValueEquivalent(a, Value::MakeList({Value::Int(1)})));
}

TEST(ValueHash, ConsistentWithEquivalence) {
  EXPECT_EQ(ValueHash(Value::Int(1)), ValueHash(Value::Float(1.0)));
  Value a = Value::MakeList({Value::Null(), Value::Int(1)});
  Value b = Value::MakeList({Value::Null(), Value::Int(1)});
  EXPECT_EQ(ValueHash(a), ValueHash(b));
}

// ---- Global orderability ---------------------------------------------------

TEST(ValueOrder, TypeBuckets) {
  // MAP < NODE < REL < LIST < ... < STRING < BOOLEAN < NUMBER < null.
  Value map = Value::MakeMap({});
  Value node = Value::Node(NodeId{0});
  Value rel = Value::Relationship(RelId{0});
  Value list = Value::EmptyList();
  Value str = Value::String("s");
  Value boolean = Value::Bool(false);
  Value num = Value::Int(0);
  Value null = Value::Null();
  std::vector<Value> order = {map, node, rel, list, str, boolean, num, null};
  for (size_t i = 0; i < order.size(); ++i) {
    for (size_t j = 0; j < order.size(); ++j) {
      int c = ValueOrder(order[i], order[j]);
      if (i < j) {
        EXPECT_LT(c, 0) << i << " vs " << j;
      } else if (i > j) {
        EXPECT_GT(c, 0) << i << " vs " << j;
      } else {
        EXPECT_EQ(c, 0) << i;
      }
    }
  }
}

TEST(ValueOrder, NumbersInterleaveAndNaNLast) {
  EXPECT_LT(ValueOrder(Value::Int(1), Value::Float(1.5)), 0);
  EXPECT_LT(ValueOrder(Value::Float(0.5), Value::Int(1)), 0);
  double inf = std::numeric_limits<double>::infinity();
  double nan = std::nan("");
  EXPECT_LT(ValueOrder(Value::Float(inf), Value::Float(nan)), 0);
  EXPECT_EQ(ValueOrder(Value::Float(nan), Value::Float(nan)), 0);
}

TEST(ValueOrder, TotalOrderProperties) {
  // Orderability must be a total order on a mixed value set: antisymmetric,
  // transitive, consistent with equivalence.
  std::vector<Value> vals = {
      Value::Null(),
      Value::Int(-3),
      Value::Int(7),
      Value::Float(0.5),
      Value::Float(7.0),
      Value::String(""),
      Value::String("zz"),
      Value::Bool(true),
      Value::MakeList({Value::Int(1)}),
      Value::MakeList({Value::Int(1), Value::Int(2)}),
      Value::MakeMap({{"a", Value::Int(1)}}),
      Value::Node(NodeId{2}),
      Value::Relationship(RelId{5}),
      Value::Temporal(Date{100}),
      Value::Temporal(Duration::Make(0, 1, 0, 0)),
  };
  for (const Value& a : vals) {
    for (const Value& b : vals) {
      EXPECT_EQ(ValueOrder(a, b), -ValueOrder(b, a));
      for (const Value& c : vals) {
        if (ValueOrder(a, b) <= 0 && ValueOrder(b, c) <= 0) {
          EXPECT_LE(ValueOrder(a, c), 0);
        }
      }
    }
  }
}

// ---- Formatting -------------------------------------------------------------

TEST(Format, Scalars) {
  EXPECT_EQ(Value::Null().ToString(), "null");
  EXPECT_EQ(Value::Bool(true).ToString(), "true");
  EXPECT_EQ(Value::Int(-5).ToString(), "-5");
  EXPECT_EQ(Value::Float(2.0).ToString(), "2.0");
  EXPECT_EQ(Value::Float(2.5).ToString(), "2.5");
  EXPECT_EQ(Value::String("hi").ToString(), "'hi'");
}

TEST(Format, Containers) {
  Value l = Value::MakeList({Value::Int(1), Value::String("a")});
  EXPECT_EQ(l.ToString(), "[1, 'a']");
  Value m = Value::MakeMap({{"k", Value::Int(1)}, {"j", Value::Null()}});
  EXPECT_EQ(m.ToString(), "{j: null, k: 1}");
}

TEST(Format, Path) {
  Path p;
  p.nodes = {NodeId{1}, NodeId{2}};
  p.rels = {RelId{7}};
  EXPECT_EQ(Value::MakePath(p).ToString(), "<(1)-[:7]-(2)>");
}


// ---- Representation & coherence audit ---------------------------------------
// The shared/inline value representation must be invisible to semantics:
// equality, orderability and hashing may never depend on WHICH
// representation (inline string vs shared string, shared vs distinct
// payload) a value happens to carry. These tests pin the contract
// `ValueOrder == 0  =>  ValueEquivalent  =>  equal ValueHash` (plus
// `ValueEquals == true => ValueEquivalent`) over the representation
// boundary and over randomly generated values.

TEST(ValueRep, InlineAndSharedStringsCompareEqual) {
  // One byte around the inline capacity in both directions.
  for (size_t len : {size_t{0}, size_t{1}, Value::kInlineStringCapacity - 1,
                     Value::kInlineStringCapacity,
                     Value::kInlineStringCapacity + 1, size_t{200}}) {
    std::string text(len, 'x');
    Value direct = Value::String(text);           // inline when it fits
    Value shared = Value::String(
        std::make_shared<const std::string>(text));  // always heap-shared
    EXPECT_EQ(direct.AsString(), text);
    EXPECT_EQ(shared.AsString(), text);
    EXPECT_EQ(ValueEquals(direct, shared), Tri::kTrue) << len;
    EXPECT_TRUE(ValueEquivalent(direct, shared)) << len;
    EXPECT_EQ(ValueOrder(direct, shared), 0) << len;
    EXPECT_EQ(ValueHash(direct), ValueHash(shared)) << len;
    EXPECT_EQ(*direct.AsSharedString(), text);
  }
}

TEST(ValueRep, CopiesShareThePayload) {
  Value long_string = Value::String(std::string(100, 'y'));
  Value copy = long_string;
  EXPECT_NE(long_string.shared_rep(), nullptr);
  EXPECT_EQ(long_string.shared_rep(), copy.shared_rep());
  Value small = Value::String("tiny");
  EXPECT_EQ(small.shared_rep(), nullptr);  // inline: nothing on the heap
  Value list = Value::MakeList({Value::Int(1), Value::Null()});
  Value list_copy = list;
  EXPECT_EQ(list.shared_rep(), list_copy.shared_rep());
  // The shared-payload shortcut applies to equivalence/order, but must
  // NOT leak into 3VL equality: a list containing null is not `=` to
  // itself.
  EXPECT_EQ(ValueEquals(list, list_copy), Tri::kNull);
  EXPECT_TRUE(ValueEquivalent(list, list_copy));
  EXPECT_EQ(ValueOrder(list, list_copy), 0);
}

TEST(PathAudit, EqualityOrderingAndHashAgree) {
  Path p1{{NodeId{1}, NodeId{2}}, {RelId{7}}};
  Path p2{{NodeId{1}, NodeId{2}}, {RelId{7}}};
  Path other_rel{{NodeId{1}, NodeId{2}}, {RelId{8}}};
  Path other_node{{NodeId{1}, NodeId{3}}, {RelId{7}}};
  Path longer{{NodeId{1}, NodeId{2}, NodeId{3}}, {RelId{7}, RelId{8}}};
  EXPECT_EQ(p1, p2);
  EXPECT_NE(p1, other_rel);
  EXPECT_NE(p1, other_node);
  EXPECT_NE(p1, longer);
  // Path::operator<=> (member-lexicographic) and ValueOrder (length
  // first) may order differently, but their notion of EQUALITY must
  // agree, and hashing must follow it.
  Value v1 = Value::MakePath(p1);
  Value v2 = Value::MakePath(p2);  // distinct allocation, same value
  EXPECT_NE(v1.shared_rep(), v2.shared_rep());
  EXPECT_EQ(ValueEquals(v1, v2), Tri::kTrue);
  EXPECT_TRUE(ValueEquivalent(v1, v2));
  EXPECT_EQ(ValueOrder(v1, v2), 0);
  EXPECT_EQ(ValueHash(v1), ValueHash(v2));
  for (const Path& q : {other_rel, other_node, longer}) {
    Value vq = Value::MakePath(q);
    EXPECT_EQ(ValueEquals(v1, vq), Tri::kFalse);
    EXPECT_FALSE(ValueEquivalent(v1, vq));
    EXPECT_NE(ValueOrder(v1, vq), 0);
  }
  // ValueOrder sorts paths by length before node ids (Cypher ORDER BY);
  // operator<=> is lexicographic on nodes. Both are total orders.
  EXPECT_LT(ValueOrder(v1, Value::MakePath(longer)), 0);
}

namespace {

/// splitmix64 — deterministic across platforms.
struct AuditRng {
  uint64_t state;
  uint64_t Next() {
    uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }
  uint64_t Below(uint64_t n) { return Next() % n; }
};

/// A random value; depth-bounded so lists/maps terminate. Strings are
/// drawn from a small alphabet on both sides of the inline capacity so
/// collisions (equal values built independently) are common.
Value RandomValue(AuditRng& rng, int depth = 0) {
  switch (rng.Below(depth >= 2 ? 10 : 12)) {
    case 0:
      return Value::Null();
    case 1:
      return Value::Bool(rng.Below(2) == 0);
    case 2:
      return Value::Int(static_cast<int64_t>(rng.Below(5)) - 2);
    case 3:
      // Int-valued floats on purpose: 1 and 1.0 are equivalent and must
      // hash together.
      return Value::Float(static_cast<double>(rng.Below(5)) - 2);
    case 4:
      return Value::Float(rng.Below(2) == 0
                              ? std::numeric_limits<double>::quiet_NaN()
                              : 0.5);
    case 5: {
      size_t len = rng.Below(2) == 0 ? rng.Below(4)
                                     : Value::kInlineStringCapacity - 1 +
                                           rng.Below(4);
      std::string s(len, 'a');
      for (char& c : s) c = static_cast<char>('a' + rng.Below(3));
      return Value::String(std::move(s));
    }
    case 6:
      return Value::Node(NodeId{rng.Below(3)});
    case 7:
      return Value::Relationship(RelId{rng.Below(3)});
    case 8: {
      Path p;
      size_t hops = rng.Below(3);
      p.nodes.push_back(NodeId{rng.Below(2)});
      for (size_t i = 0; i < hops; ++i) {
        p.rels.push_back(RelId{rng.Below(2)});
        p.nodes.push_back(NodeId{rng.Below(2)});
      }
      return Value::MakePath(std::move(p));
    }
    case 9:
      return Value::Temporal(Date{static_cast<int64_t>(rng.Below(3))});
    case 10: {
      ValueList items;
      size_t n = rng.Below(3);
      for (size_t i = 0; i < n; ++i) {
        items.push_back(RandomValue(rng, depth + 1));
      }
      return Value::MakeList(std::move(items));
    }
    default: {
      ValueMap m;
      size_t n = rng.Below(3);
      for (size_t i = 0; i < n; ++i) {
        m[std::string(1, static_cast<char>('p' + rng.Below(2)))] =
            RandomValue(rng, depth + 1);
      }
      return Value::MakeMap(std::move(m));
    }
  }
}

}  // namespace

TEST(ValueAudit, RandomizedHashEqualityOrderCoherence) {
  AuditRng rng{0xC0FFEE5EEDULL};
  const int kPairs = 5000;
  int equivalent_pairs = 0;
  for (int i = 0; i < kPairs; ++i) {
    Value a = RandomValue(rng);
    Value b = RandomValue(rng);
    // Reflexivity, including through a copy (shared payload).
    Value a_copy = a;
    EXPECT_TRUE(ValueEquivalent(a, a));
    EXPECT_EQ(ValueOrder(a, a), 0);
    EXPECT_TRUE(ValueEquivalent(a, a_copy));
    EXPECT_EQ(ValueOrder(a, a_copy), 0);
    EXPECT_EQ(ValueHash(a), ValueHash(a_copy));
    // Antisymmetry.
    int ab = ValueOrder(a, b);
    int ba = ValueOrder(b, a);
    EXPECT_EQ(ab < 0, ba > 0) << a.ToString() << " vs " << b.ToString();
    EXPECT_EQ(ab == 0, ba == 0) << a.ToString() << " vs " << b.ToString();
    // The coherence chain: Order==0 => Equivalent => hashes equal; and
    // 3VL `=` true implies equivalence.
    if (ab == 0) {
      EXPECT_TRUE(ValueEquivalent(a, b))
          << a.ToString() << " vs " << b.ToString();
    }
    if (ValueEquivalent(a, b)) {
      ++equivalent_pairs;
      EXPECT_EQ(ValueHash(a), ValueHash(b))
          << a.ToString() << " vs " << b.ToString();
      // Equivalent values are indistinguishable to ordering — with ONE
      // sanctioned exception: an int and the int-valued float it equals
      // keep a deterministic int-before-float order (value_compare.cc's
      // NumberOrder tiebreak), so ORDER BY is stable across runs.
      if (a.type() == b.type()) {
        EXPECT_EQ(ab, 0) << a.ToString() << " vs " << b.ToString();
      } else {
        ASSERT_TRUE(a.is_number() && b.is_number())
            << a.ToString() << " vs " << b.ToString();
        EXPECT_EQ(ab, a.is_int() ? -1 : 1)
            << a.ToString() << " vs " << b.ToString();
      }
    }
    if (ValueEquals(a, b) == Tri::kTrue) {
      EXPECT_TRUE(ValueEquivalent(a, b))
          << a.ToString() << " vs " << b.ToString();
    }
  }
  // The generator must actually produce colliding pairs, or the
  // implications above are vacuous.
  EXPECT_GE(equivalent_pairs, kPairs / 50);
}

}  // namespace
}  // namespace gqlite
