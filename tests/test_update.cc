// Update-language tests (§2 "Data modification"): per-row clause
// semantics, CREATE binding, SET forms, REMOVE, DELETE rules, MERGE
// match-vs-create including ON CREATE/ON MATCH, and update statistics.

#include <gtest/gtest.h>

#include "src/core/engine.h"

namespace gqlite {
namespace {

TEST(Create, BindsNewVariablesPerRow) {
  CypherEngine engine;
  // One CREATE per driving row: 3 rows → 3 nodes.
  auto r = engine.Execute("UNWIND [1, 2, 3] AS x CREATE (n:N {v: x}) "
                          "RETURN n.v");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->stats.nodes_created, 3);
  EXPECT_EQ(r->table.NumRows(), 3u);
  EXPECT_EQ(engine.graph().NumNodes(), 3u);
}

TEST(Create, SharedVariableAcrossTuplePaths) {
  CypherEngine engine;
  auto r = engine.Execute("CREATE (a:Hub), (a)-[:T]->(b:Leaf), "
                          "(a)-[:T]->(c:Leaf)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->stats.nodes_created, 3);  // a created once
  EXPECT_EQ(r->stats.rels_created, 2);
  auto hub = engine.Execute("MATCH (h:Hub)-[:T]->(l:Leaf) RETURN count(l)");
  EXPECT_EQ(hub->table.rows()[0][0].AsInt(), 2);
}

TEST(Create, AttachToBoundNode) {
  CypherEngine engine;
  ASSERT_TRUE(engine.Execute("CREATE (:Anchor {k: 1})").ok());
  auto r = engine.Execute(
      "MATCH (a:Anchor) CREATE (a)-[:OWNS]->(b:Item) RETURN b");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->stats.nodes_created, 1);
  EXPECT_EQ(r->stats.rels_created, 1);
  EXPECT_EQ(engine.graph().NumNodes(), 2u);
}

TEST(Create, LeftArrowDirection) {
  CypherEngine engine;
  ASSERT_TRUE(engine.Execute("CREATE (a:A)<-[:PTS]-(b:B)").ok());
  auto r = engine.Execute("MATCH (b:B)-[:PTS]->(a:A) RETURN count(*)");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->table.rows()[0][0].AsInt(), 1);
}

TEST(Create, NamedPathValue) {
  CypherEngine engine;
  auto r = engine.Execute(
      "CREATE p = (:X)-[:T]->(:Y) RETURN length(p) AS len");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->table.rows()[0][0].AsInt(), 1);
}

TEST(Create, NullPropertiesAreSkipped) {
  CypherEngine engine;
  auto r = engine.Execute("CREATE (n:N {a: null, b: 1}) RETURN keys(n)");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->table.rows()[0][0].AsList().size(), 1u);
}

TEST(Set, PropertyOnNullIsNoOp) {
  CypherEngine engine;
  ASSERT_TRUE(engine.Execute("CREATE (:A)").ok());
  // OPTIONAL MATCH produces a null m; SET must skip it silently.
  auto r = engine.Execute(
      "MATCH (a:A) OPTIONAL MATCH (a)-[:T]->(m) SET m.x = 1");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->stats.properties_set, 0);
}

TEST(Set, ReplaceVsMergeProperties) {
  CypherEngine engine;
  ASSERT_TRUE(engine.Execute("CREATE (:N {a: 1, b: 2})").ok());
  // += merges: a updated, c added, b kept.
  auto r = engine.Execute("MATCH (n:N) SET n += {a: 10, c: 3} "
                          "RETURN n.a, n.b, n.c");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->table.rows()[0][0].AsInt(), 10);
  EXPECT_EQ(r->table.rows()[0][1].AsInt(), 2);
  EXPECT_EQ(r->table.rows()[0][2].AsInt(), 3);
  // = replaces: b and c gone.
  auto r2 = engine.Execute("MATCH (n:N) SET n = {z: 9} "
                           "RETURN n.a, n.z, size(keys(n)) AS nkeys");
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(r2->table.rows()[0][0].is_null());
  EXPECT_EQ(r2->table.rows()[0][1].AsInt(), 9);
  EXPECT_EQ(r2->table.rows()[0][2].AsInt(), 1);
}

TEST(Set, CopyPropertiesFromNode) {
  CypherEngine engine;
  ASSERT_TRUE(engine.Execute("CREATE (:Src {x: 1, y: 2}), (:Dst {z: 3})")
                  .ok());
  auto r = engine.Execute(
      "MATCH (s:Src), (d:Dst) SET d = s RETURN d.x, d.y, d.z");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->table.rows()[0][0].AsInt(), 1);
  EXPECT_EQ(r->table.rows()[0][1].AsInt(), 2);
  EXPECT_TRUE(r->table.rows()[0][2].is_null());  // replaced away
}

TEST(Set, NullValueRemovesProperty) {
  CypherEngine engine;
  ASSERT_TRUE(engine.Execute("CREATE (:N {a: 1})").ok());
  auto r = engine.Execute("MATCH (n:N) SET n.a = null RETURN keys(n)");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->table.rows()[0][0].AsList().empty());
}

TEST(Set, LabelsAndRelationshipProperties) {
  CypherEngine engine;
  ASSERT_TRUE(engine.Execute("CREATE (:A)-[:T]->(:B)").ok());
  auto r = engine.Execute("MATCH (a:A)-[t:T]->() SET t.w = 5, a:Marked:Hot");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->stats.properties_set, 1);
  EXPECT_EQ(r->stats.labels_added, 2);
  auto chk = engine.Execute("MATCH (a:Marked:Hot)-[t:T]->() RETURN t.w");
  EXPECT_EQ(chk->table.rows()[0][0].AsInt(), 5);
}

TEST(Remove, PropertyAndLabel) {
  CypherEngine engine;
  ASSERT_TRUE(engine.Execute("CREATE (:A:B {x: 1, y: 2})").ok());
  auto r = engine.Execute("MATCH (n:A) REMOVE n.x, n:B");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->stats.labels_removed, 1);
  auto chk = engine.Execute("MATCH (n:A) RETURN n.x, n.y, labels(n)");
  EXPECT_TRUE(chk->table.rows()[0][0].is_null());
  EXPECT_EQ(chk->table.rows()[0][1].AsInt(), 2);
  EXPECT_EQ(chk->table.rows()[0][2].AsList().size(), 1u);
}

TEST(Delete, NullIsIgnored) {
  CypherEngine engine;
  ASSERT_TRUE(engine.Execute("CREATE (:A)").ok());
  auto r = engine.Execute(
      "MATCH (a:A) OPTIONAL MATCH (a)-[:T]->(m) DELETE m");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->stats.nodes_deleted, 0);
}

TEST(Delete, RelationshipThenNode) {
  CypherEngine engine;
  ASSERT_TRUE(engine.Execute("CREATE (:A)-[:T]->(:B)").ok());
  auto r = engine.Execute("MATCH (a:A)-[t:T]->(b:B) DELETE t, a, b");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->stats.nodes_deleted, 2);
  EXPECT_EQ(r->stats.rels_deleted, 1);
  EXPECT_EQ(engine.graph().NumNodes(), 0u);
}

TEST(Delete, PathDeletesItsParts) {
  CypherEngine engine;
  ASSERT_TRUE(engine.Execute("CREATE (:A)-[:T]->(:B)-[:T]->(:C)").ok());
  auto r = engine.Execute(
      "MATCH p = (:A)-[:T]->(:B)-[:T]->(:C) DETACH DELETE p");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(engine.graph().NumNodes(), 0u);
  EXPECT_EQ(engine.graph().NumRels(), 0u);
}

TEST(Delete, DoubleDeleteIsTolerated) {
  CypherEngine engine;
  ASSERT_TRUE(engine.Execute("CREATE (:A), (:A)").ok());
  // Cartesian pairs delete each node twice; second delete is a no-op.
  auto r = engine.Execute("MATCH (a:A), (b:A) DELETE a, b");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->stats.nodes_deleted, 2);
}

TEST(Delete, DetachSelfLoopCountsOnce) {
  CypherEngine engine;
  // A self-loop sits in BOTH adjacency directions of its node; the
  // pre-fix accounting read Degree(n) (== 2 here) instead of counting
  // what DetachDeleteNode actually removed.
  ASSERT_TRUE(engine.Execute("CREATE (n:A)-[:R]->(n)").ok());
  auto r = engine.Execute("MATCH (a:A) DETACH DELETE a");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->stats.nodes_deleted, 1);
  EXPECT_EQ(r->stats.rels_deleted, 1);
  EXPECT_EQ(engine.graph().NumRels(), 0u);
}

TEST(Delete, DetachBothEndpointsCountsRelOnce) {
  CypherEngine engine;
  // DETACH DELETE of both endpoints in one statement: the shared
  // relationship is removed by the first node's detach; the second
  // node's detach must not count it again (pre-fix it contributed to
  // both nodes' pre-delete Degree).
  ASSERT_TRUE(engine.Execute("CREATE (:A)-[:T]->(:B)").ok());
  auto r = engine.Execute("MATCH (a:A), (b:B) DETACH DELETE a, b");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->stats.nodes_deleted, 2);
  EXPECT_EQ(r->stats.rels_deleted, 1);
}

TEST(Delete, DetachMixedFanCountsDistinctRels) {
  CypherEngine engine;
  // Hub with a self-loop plus one in- and one out-edge: 3 distinct
  // relationships (Degree would report 4).
  ASSERT_TRUE(engine.Execute("CREATE (h:Hub)-[:L]->(h)").ok());
  ASSERT_TRUE(
      engine.Execute("MATCH (h:Hub) CREATE (h)-[:O]->(:X), (:Y)-[:I]->(h)")
          .ok());
  auto r = engine.Execute("MATCH (h:Hub) DETACH DELETE h");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->stats.nodes_deleted, 1);
  EXPECT_EQ(r->stats.rels_deleted, 3);
  EXPECT_EQ(engine.graph().NumRels(), 0u);
  EXPECT_EQ(engine.graph().NumNodes(), 2u);
}

TEST(Merge, PerRowSemantics) {
  CypherEngine engine;
  // Rows 1, 2, 2, 3: MERGE creates 1, 2, 3 once each — the second 2
  // matches the node the first 2 just created.
  auto r = engine.Execute(
      "UNWIND [1, 2, 2, 3] AS x MERGE (n:K {v: x}) RETURN id(n)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->stats.nodes_created, 3);
  EXPECT_EQ(r->table.NumRows(), 4u);
  EXPECT_TRUE(ValueEquivalent(r->table.rows()[1][0], r->table.rows()[2][0]));
}

TEST(Merge, MatchingPreservesMultiplicity) {
  CypherEngine engine;
  ASSERT_TRUE(engine.Execute("CREATE (:K {v: 1}), (:K {v: 1})").ok());
  // MERGE matching two nodes emits two rows (it is a MATCH when found).
  auto r = engine.Execute("MERGE (n:K {v: 1}) RETURN count(n)");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->table.rows()[0][0].AsInt(), 2);
  EXPECT_EQ(r->stats.nodes_created, 0);
}

TEST(Merge, OnCreateOnMatchSetClauses) {
  CypherEngine engine;
  auto r1 = engine.Execute(
      "MERGE (n:C {k: 1}) ON CREATE SET n.created = 1 "
      "ON MATCH SET n.matched = coalesce(n.matched, 0) + 1 RETURN n.created, "
      "n.matched");
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(r1->table.rows()[0][0].AsInt(), 1);
  EXPECT_TRUE(r1->table.rows()[0][1].is_null());
  auto r2 = engine.Execute(
      "MERGE (n:C {k: 1}) ON CREATE SET n.created = 1 "
      "ON MATCH SET n.matched = coalesce(n.matched, 0) + 1 RETURN n.matched");
  EXPECT_EQ(r2->table.rows()[0][0].AsInt(), 1);
  auto r3 = engine.Execute(
      "MERGE (n:C {k: 1}) ON MATCH SET n.matched = n.matched + 1 "
      "RETURN n.matched");
  EXPECT_EQ(r3->table.rows()[0][0].AsInt(), 2);
}

TEST(Merge, PathPatternCreatesWhole) {
  CypherEngine engine;
  ASSERT_TRUE(engine.Execute("CREATE (:P {id: 1})").ok());
  // No (:P{id:1})-[:NEXT]->(:P{id:2}) exists: MERGE creates the whole
  // pattern — including a NEW :P{id:1} node? No: bound variables are
  // reused, unbound pattern parts are created. Here `a` is bound.
  auto r = engine.Execute(
      "MATCH (a:P {id: 1}) MERGE (a)-[:NEXT]->(b:P {id: 2}) RETURN b.id");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->stats.nodes_created, 1);
  EXPECT_EQ(r->stats.rels_created, 1);
  // Idempotent on re-run.
  auto r2 = engine.Execute(
      "MATCH (a:P {id: 1}) MERGE (a)-[:NEXT]->(b:P {id: 2}) RETURN b.id");
  EXPECT_EQ(r2->stats.nodes_created, 0);
  EXPECT_EQ(r2->stats.rels_created, 0);
}

TEST(UpdateStats, Rendering) {
  UpdateStats s;
  EXPECT_EQ(s.ToString(), "no changes");
  EXPECT_FALSE(s.Any());
  s.nodes_created = 2;
  s.properties_set = 3;
  EXPECT_TRUE(s.Any());
  EXPECT_EQ(s.ToString(), "2 nodes created, 3 properties set");
}

TEST(UpdateThenRead, ClauseOrderIsTopDown) {
  CypherEngine engine;
  // The MATCH after CREATE sees the newly created node (top-down clause
  // semantics, §2: "the same simple, top-down semantic model").
  auto r = engine.Execute(
      "CREATE (:Fresh {v: 1}) WITH 1 AS one MATCH (f:Fresh) "
      "RETURN count(f)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->table.rows()[0][0].AsInt(), 1);
}

TEST(UpdateErrors, SetOnValueIsTypeError) {
  CypherEngine engine;
  ASSERT_TRUE(engine.Execute("CREATE (:A {v: 1})").ok());
  auto r = engine.Execute("MATCH (a:A) WITH a.v AS v SET v.x = 1");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kTypeError);
}

}  // namespace
}  // namespace gqlite
