// Unit tests for the morsel-driven parallel runtime (src/exec/): the
// worker pool, the morsel dispatcher, partitioned scans, the
// parallel-aggregation merge (AggregationState + Aggregator partials),
// and the engine-level plumbing (num_threads, EXPLAIN/PROFILE surface,
// serial fallbacks for unsafe plans). The end-to-end equivalence sweep
// lives in test_differential.cc; the TCK parallel leg in test_tck.cc.

#include <gtest/gtest.h>

#include <limits>
#include <set>
#include <thread>

#include "src/common/sync.h"
#include "src/core/engine.h"
#include "src/exec/parallel.h"
#include "src/exec/worker_pool.h"
#include "src/frontend/parser.h"
#include "src/interp/projection.h"
#include "src/plan/runtime.h"
#include "src/workload/generators.h"

namespace gqlite {
namespace {

// ---- WorkerPool -------------------------------------------------------------

TEST(WorkerPool, RunsCallerAndPoolThreads) {
  WorkerPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
  AtomicCounter ran;
  std::set<size_t> indices;
  Mutex mu;
  ASSERT_TRUE(pool
                  .RunOnAll([&](size_t w) {
                    ran.FetchAdd(1);
                    MutexLock lock(&mu);
                    indices.insert(w);
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(ran.Load(), 4u);  // 3 pool threads + the calling thread
  EXPECT_EQ(indices, (std::set<size_t>{0, 1, 2, 3}));
}

TEST(WorkerPool, ReportsLowestIndexedFailure) {
  WorkerPool pool(3);
  Status st = pool.RunOnAll([&](size_t w) {
    if (w >= 2) {
      return Status::EvaluationError("worker " + std::to_string(w));
    }
    return Status::OK();
  });
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("worker 2"), std::string::npos);
}

TEST(WorkerPool, ReusableAcrossJobs) {
  WorkerPool pool(2);
  for (int job = 0; job < 50; ++job) {
    AtomicCounter ran;
    ASSERT_TRUE(pool
                    .RunOnAll([&](size_t) {
                      ran.FetchAdd(1);
                      return Status::OK();
                    })
                    .ok());
    ASSERT_EQ(ran.Load(), 3u);
  }
}

TEST(WorkerPool, ZeroThreadsRunsOnCaller) {
  WorkerPool pool(0);
  int ran = 0;
  ASSERT_TRUE(pool
                  .RunOnAll([&](size_t w) {
                    EXPECT_EQ(w, 0u);
                    ++ran;
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(ran, 1);
}

// ---- WorkerPool::RunTasks (merge-stage submission) --------------------------

TEST(WorkerPool, RunTasksRunsEveryTaskExactlyOnce) {
  WorkerPool pool(3);
  constexpr size_t kTasks = 37;  // more tasks than workers: claims loop
  std::vector<int> ran(kTasks, 0);
  Mutex mu;
  ASSERT_TRUE(pool
                  .RunTasks(kTasks,
                            [&](size_t t) {
                              MutexLock lock(&mu);
                              ++ran[t];
                              return Status::OK();
                            })
                  .ok());
  for (size_t t = 0; t < kTasks; ++t) {
    EXPECT_EQ(ran[t], 1) << "task " << t;
  }
}

TEST(WorkerPool, RunTasksReportsLowestTaskIndexFailure) {
  WorkerPool pool(3);
  // Two failing tasks: whatever worker hits one first in wall-clock
  // time, the reported error must be task 2's (lowest index wins).
  for (int run = 0; run < 20; ++run) {
    Status st = pool.RunTasks(16, [&](size_t t) {
      if (t == 2 || t == 11) {
        return Status::EvaluationError("task " + std::to_string(t));
      }
      return Status::OK();
    });
    ASSERT_FALSE(st.ok());
    EXPECT_NE(st.ToString().find("task 2"), std::string::npos)
        << "run " << run << ": " << st.ToString();
  }
}

TEST(WorkerPool, RunTasksZeroTasksIsANoOp) {
  WorkerPool pool(2);
  int ran = 0;
  ASSERT_TRUE(pool
                  .RunTasks(0,
                            [&](size_t) {
                              ++ran;
                              return Status::OK();
                            })
                  .ok());
  EXPECT_EQ(ran, 0);
}

// ---- MorselDispatcher -------------------------------------------------------

TEST(MorselDispatcher, CoversDomainWithoutOverlap) {
  MorselDispatcher d(100, 16);
  EXPECT_EQ(d.num_morsels(), 7u);  // ceil(100/16)
  std::vector<bool> seen(100, false);
  ScanMorsel m;
  size_t last_index = 0;
  size_t count = 0;
  while (d.Next(&m)) {
    EXPECT_EQ(m.index, count) << "claims arrive in range order";
    last_index = m.index;
    for (size_t i = m.begin; i < m.end; ++i) {
      EXPECT_FALSE(seen[i]) << "position " << i << " claimed twice";
      seen[i] = true;
    }
    ++count;
  }
  (void)last_index;
  EXPECT_EQ(count, 7u);
  for (size_t i = 0; i < 100; ++i) EXPECT_TRUE(seen[i]);
}

TEST(MorselDispatcher, EmptyDomain) {
  MorselDispatcher d(0, 16);
  EXPECT_EQ(d.num_morsels(), 0u);
  ScanMorsel m;
  EXPECT_FALSE(d.Next(&m));
}

TEST(MorselDispatcher, ChunkScalesWithDomainAndFloors) {
  EXPECT_EQ(MorselChunk(10, 4), 16u);     // floor wins on tiny domains
  EXPECT_EQ(MorselChunk(3200, 4), 100u);  // ~8 morsels per worker
  EXPECT_GE(MorselChunk(1u << 20, 4), (1u << 20) / 32);
}

// ---- AggregationState: parallel-aggregation merge ---------------------------

/// Parses `RETURN ...` and hands back the projection body.
class BodyFixture {
 public:
  explicit BodyFixture(const std::string& ret) {
    auto q = ParseQuery(ret);
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    query_ = std::move(q).value();
  }
  const ast::ProjectionBody& body() const {
    return static_cast<const ast::ReturnClause&>(
               *query_.parts[0].clauses.back())
        .body;
  }

 private:
  ast::Query query_;
};

Table IntTable(std::vector<std::string> fields,
               std::vector<std::vector<int64_t>> rows) {
  Table t(std::move(fields));
  for (const auto& r : rows) {
    ValueList row;
    for (int64_t v : r) row.push_back(Value::Int(v));
    t.AddRow(std::move(row));
  }
  return t;
}

/// Accumulates `input` split into `partitions` separate states merged in
/// order, and returns the finished rows.
Result<Table> MergePartitions(const ast::ProjectionBody& body,
                              const Table& input,
                              const std::vector<size_t>& splits) {
  EvalContext ctx;
  std::vector<AggregationState> states;
  size_t row = 0;
  for (size_t len : splits) {
    GQL_ASSIGN_OR_RETURN(AggregationState st,
                         AggregationState::Plan(body, input.fields()));
    Table part(input.fields());
    for (size_t i = 0; i < len && row < input.NumRows(); ++i, ++row) {
      part.AddRow(input.rows()[row]);
    }
    GQL_RETURN_IF_ERROR(st.Accumulate(part, ctx));
    states.push_back(std::move(st));
  }
  AggregationState merged = std::move(states[0]);
  for (size_t i = 1; i < states.size(); ++i) {
    GQL_RETURN_IF_ERROR(merged.MergeFrom(std::move(states[i])));
  }
  return merged.Finish(ctx);
}

TEST(AggregationMerge, MatchesSerialAcrossPartitionings) {
  BodyFixture fx(
      "RETURN x AS x, count(*) AS c, sum(y) AS s, min(y) AS mn, "
      "max(y) AS mx, avg(y) AS av, collect(y) AS ys, "
      "count(DISTINCT y) AS d");
  Table input = IntTable({"x", "y"}, {{1, 10},
                                      {2, 20},
                                      {1, 30},
                                      {2, 20},
                                      {1, 10},
                                      {3, 5},
                                      {1, 40}});
  EvalContext ctx;
  auto serial = EvaluateProjection(fx.body(), input, ctx);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  // Every partitioning must reproduce the serial result byte for byte:
  // group order (first occurrence), collect order, DISTINCT dedup.
  for (const std::vector<size_t>& splits :
       std::vector<std::vector<size_t>>{{7},
                                        {1, 1, 1, 1, 1, 1, 1},  // one-row
                                        {3, 4},
                                        {2, 0, 5},     // empty middle morsel
                                        {0, 7, 0}}) {  // empty edge morsels
    auto merged = MergePartitions(fx.body(), input, splits);
    ASSERT_TRUE(merged.ok()) << merged.status().ToString();
    EXPECT_EQ(serial->ToString(), merged->ToString());
  }
}

TEST(AggregationMerge, EmptyMorselsProduceTheNeutralRow) {
  BodyFixture fx(
      "RETURN count(*) AS c, sum(y) AS s, avg(y) AS a, collect(y) AS ys, "
      "min(y) AS mn");
  Table input = IntTable({"y"}, {});
  auto merged = MergePartitions(fx.body(), input, {0, 0, 0});
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  ASSERT_EQ(merged->NumRows(), 1u);
  EXPECT_EQ(merged->rows()[0][0].ToString(), "0");     // count
  EXPECT_EQ(merged->rows()[0][1].ToString(), "0");     // sum
  EXPECT_EQ(merged->rows()[0][2].ToString(), "null");  // avg
  EXPECT_EQ(merged->rows()[0][3].ToString(), "[]");    // collect
  EXPECT_EQ(merged->rows()[0][4].ToString(), "null");  // min
}

TEST(AggregationMerge, SumOverflowInMergeRaisesEvaluationError) {
  BodyFixture fx("RETURN sum(y) AS s");
  constexpr int64_t kBig = std::numeric_limits<int64_t>::max() - 1;
  Table input = IntTable({"y"}, {{kBig}, {kBig}});
  // Each one-row partition sums fine; combining the partial sums is the
  // overflow — the merge must raise exactly like serial accumulation
  // would, not wrap.
  auto merged = MergePartitions(fx.body(), input, {1, 1});
  ASSERT_FALSE(merged.ok());
  EXPECT_NE(merged.status().ToString().find("overflow"), std::string::npos)
      << merged.status().ToString();
}

TEST(AggregationMerge, AvgStaysExactOverIntegerPartitions) {
  BodyFixture fx("RETURN avg(y) AS a");
  // 2^53 + 2 and 2: the float path would round the sum; the int path
  // must keep the mean exact ((2^53 + 4) / 2 = 2^52 + 2).
  Table input(std::vector<std::string>{"y"});
  ValueList r1, r2;
  r1.push_back(Value::Int((int64_t{1} << 53) + 2));
  r2.push_back(Value::Int(2));
  input.AddRow(std::move(r1));
  input.AddRow(std::move(r2));
  auto merged = MergePartitions(fx.body(), input, {1, 1});
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_EQ(merged->rows()[0][0].AsFloat(),
            static_cast<double>((int64_t{1} << 52) + 2));
}

TEST(AggregationMerge, DistinctCollectKeepsFirstOccurrenceOrder) {
  BodyFixture fx("RETURN collect(DISTINCT y) AS ys");
  Table input = IntTable({"y"}, {{3}, {1}, {3}, {2}, {1}, {4}});
  for (const std::vector<size_t>& splits :
       std::vector<std::vector<size_t>>{{6}, {2, 2, 2}, {1, 5}}) {
    auto merged = MergePartitions(fx.body(), input, splits);
    ASSERT_TRUE(merged.ok()) << merged.status().ToString();
    EXPECT_EQ(merged->rows()[0][0].ToString(), "[3, 1, 2, 4]");
  }
}

/// Runs `input` through the full partitioned-aggregation merge exactly
/// as the parallel runtime does: split into `splits` ranges, accumulate
/// each range into a PartitionedAggregationState with global (range,
/// row) stamps, merge partition p of every range in range order, Finish
/// each partition with stamps, and interleave the per-partition group
/// streams back into ascending stamp order.
Result<Table> MergePartitioned(const ast::ProjectionBody& body,
                               const Table& input,
                               const std::vector<size_t>& splits,
                               size_t partitions) {
  EvalContext ctx;
  GQL_ASSIGN_OR_RETURN(AggregationState proto,
                       AggregationState::Plan(body, input.fields()));
  std::vector<std::unique_ptr<PartitionedAggregationState>> ranges;
  size_t row = 0;
  for (size_t range = 0; range < splits.size(); ++range) {
    auto st = std::make_unique<PartitionedAggregationState>(proto, partitions);
    for (size_t i = 0; i < splits[range] && row < input.NumRows();
         ++i, ++row) {
      GQL_RETURN_IF_ERROR(st->AccumulateRow(input.rows()[row], ctx,
                                            GroupStamp{range, i}));
    }
    ranges.push_back(std::move(st));
  }
  std::vector<Table> part_tables;
  std::vector<std::vector<GroupStamp>> part_stamps(partitions);
  for (size_t p = 0; p < partitions; ++p) {
    AggregationState merged = std::move(ranges[0]->partition(p));
    for (size_t r = 1; r < ranges.size(); ++r) {
      GQL_RETURN_IF_ERROR(merged.MergeFrom(std::move(ranges[r]->partition(p))));
    }
    GQL_ASSIGN_OR_RETURN(Table t, merged.Finish(ctx, &part_stamps[p]));
    part_tables.push_back(std::move(t));
  }
  Table out(part_tables[0].fields());
  std::vector<size_t> pos(partitions, 0);
  while (true) {
    size_t best = partitions;
    for (size_t p = 0; p < partitions; ++p) {
      if (pos[p] >= part_stamps[p].size()) continue;
      if (best == partitions ||
          part_stamps[p][pos[p]] < part_stamps[best][pos[best]]) {
        best = p;
      }
    }
    if (best == partitions) break;
    out.AddRow(std::move(part_tables[best].mutable_rows()[pos[best]]));
    ++pos[best];
  }
  return out;
}

TEST(PartitionedAggregation, MatchesSerialAcrossPartitionCounts) {
  BodyFixture fx(
      "RETURN x AS x, count(*) AS c, sum(y) AS s, collect(y) AS ys, "
      "min(y) AS mn");
  Table input = IntTable(
      {"x", "y"},
      {{5, 1}, {2, 2}, {9, 3}, {2, 4}, {5, 5}, {7, 6}, {9, 7}, {2, 8}});
  EvalContext ctx;
  auto serial = EvaluateProjection(fx.body(), input, ctx);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  // Partition counts beyond the 4 distinct keys leave partitions EMPTY;
  // range splits with empty edges/middles leave per-range states empty.
  // Every combination must reproduce the serial group order (stamps) and
  // contents (merge in range order) byte for byte.
  for (size_t partitions : {size_t{1}, size_t{2}, size_t{3}, size_t{16}}) {
    for (const std::vector<size_t>& splits :
         std::vector<std::vector<size_t>>{
             {8}, {3, 5}, {1, 1, 1, 1, 1, 1, 1, 1}, {0, 8, 0}, {4, 0, 4}}) {
      auto merged = MergePartitioned(fx.body(), input, splits, partitions);
      ASSERT_TRUE(merged.ok())
          << partitions << " partitions: " << merged.status().ToString();
      EXPECT_EQ(serial->ToString(), merged->ToString())
          << partitions << " partitions";
    }
  }
}

TEST(PartitionedAggregation, AllRowsOneGroupLeavesOthersEmpty) {
  BodyFixture fx("RETURN x AS x, count(*) AS c, sum(y) AS s");
  // One group key: every row routes to ONE partition; the other
  // partitions stay empty through accumulate, merge and finish.
  Table input = IntTable({"x", "y"}, {{1, 10}, {1, 20}, {1, 30}, {1, 40}});
  EvalContext ctx;
  auto serial = EvaluateProjection(fx.body(), input, ctx);
  ASSERT_TRUE(serial.ok());
  auto merged = MergePartitioned(fx.body(), input, {2, 2}, 8);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_EQ(serial->ToString(), merged->ToString());
  ASSERT_EQ(merged->NumRows(), 1u);
}

TEST(PartitionedAggregation, EquivalentKeysShareAPartition) {
  BodyFixture fx("RETURN x AS x, count(*) AS c");
  // 1 and 1.0 are equivalent grouping keys (one group). Routing by any
  // hash that is not equivalence-consistent would split them across
  // partitions and produce two groups.
  Table input(std::vector<std::string>{"x"});
  ValueList r1, r2;
  r1.push_back(Value::Int(1));
  r2.push_back(Value::Float(1.0));
  input.AddRow(std::move(r1));
  input.AddRow(std::move(r2));
  EvalContext ctx;
  auto serial = EvaluateProjection(fx.body(), input, ctx);
  ASSERT_TRUE(serial.ok());
  ASSERT_EQ(serial->NumRows(), 1u);
  for (size_t partitions : {size_t{2}, size_t{7}, size_t{16}}) {
    auto merged = MergePartitioned(fx.body(), input, {1, 1}, partitions);
    ASSERT_TRUE(merged.ok()) << merged.status().ToString();
    EXPECT_EQ(serial->ToString(), merged->ToString())
        << partitions << " partitions";
  }
}

// ---- Engine-level parallel execution ---------------------------------------

GraphPtr TestGraph() {
  static GraphPtr g = workload::MakeRandomGraph(120, 300, 99);
  return g;
}

CypherEngine ParallelEngine(size_t threads) {
  EngineOptions opts;
  opts.num_threads = threads;
  CypherEngine engine(opts);
  engine.set_default_graph(TestGraph());
  return engine;
}

TEST(ParallelEngine, MatchesSerialVolcano) {
  if (!EffectiveNumThreads(4).ok() || *EffectiveNumThreads(4) != 4u) {
    GTEST_SKIP() << "GQLITE_THREADS overrides this test's thread count";
  }
  CypherEngine serial = ParallelEngine(1);
  CypherEngine par = ParallelEngine(4);
  for (const char* q : {
           "MATCH (n) RETURN count(*) AS c",
           "MATCH (a:A)-[:T]->(b) RETURN count(*) AS c, sum(a.v) AS s",
           "MATCH (a)-[:T]->(b) WHERE a.v > b.v RETURN a.v AS x, b.v AS y "
           "ORDER BY x, y",
           "MATCH (a)-[:T]->(b)-[:T]->(c) RETURN b.v AS g, count(*) AS c "
           "ORDER BY g",
       }) {
    auto want = serial.Execute(q);
    auto got = par.Execute(q);
    ASSERT_TRUE(want.ok()) << q << ": " << want.status().ToString();
    ASSERT_TRUE(got.ok()) << q << ": " << got.status().ToString();
    EXPECT_TRUE(want->table.SameBag(got->table)) << q;
    // ORDER BY results must be byte-identical, not just bag-identical.
    if (std::string(q).find("ORDER BY") != std::string::npos) {
      EXPECT_EQ(want->table.ToString(), got->table.ToString()) << q;
    }
  }
  EXPECT_GE(par.parallel_stats().queries, 4u);
  EXPECT_GT(par.parallel_stats().morsels, 0u);
}

TEST(ParallelEngine, ExplainSurfacesWorkersAndSerialReasons) {
  CypherEngine par = ParallelEngine(4);
  // GQLITE_THREADS (the sanitizer CI legs) overrides the requested 4; the
  // reason strings below only print for a parallel-capable engine.
  size_t effective = par.options().num_threads;
  if (effective <= 1) {
    GTEST_SKIP() << "GQLITE_THREADS forces serial execution";
  }
  auto ex = par.Explain("MATCH (n) RETURN count(*) AS c");
  ASSERT_TRUE(ex.ok());
  EXPECT_NE(ex->find("Parallel: " + std::to_string(effective) + " workers"),
            std::string::npos)
      << *ex;

  // Pipeline breakers are parallel merge points (ISSUE 8), intermediate
  // WITH included: EXPLAIN names the merge-stage shape.
  struct ShapeCase {
    const char* query;
    const char* shape;
  };
  for (const ShapeCase& c : std::vector<ShapeCase>{
           {"MATCH (n) RETURN n.v AS v ORDER BY v", "parallel merge sort"},
           {"MATCH (n) RETURN DISTINCT n.v AS v", "partitioned DISTINCT"},
           {"MATCH (n) RETURN n.v AS g, count(*) AS c",
            "partitioned aggregation merge"},
           {"MATCH (n) RETURN count(*) AS c", "global aggregation fold"},
           {"MATCH (n) RETURN n.v AS v", "concat merge"},
           {"MATCH (n) WITH n.v AS v ORDER BY v RETURN count(*) AS c",
            "parallel merge sort at intermediate WITH"},
           {"MATCH (n) WITH DISTINCT n.v AS v RETURN count(*) AS c",
            "partitioned DISTINCT merge at intermediate WITH"},
       }) {
    auto plan = par.Explain(c.query);
    ASSERT_TRUE(plan.ok()) << c.query << ": " << plan.status().ToString();
    EXPECT_NE(plan->find(c.shape), std::string::npos)
        << c.query << "\n" << *plan;
  }

  // Serial fallbacks name their reason.
  struct Case {
    const char* query;
    const char* reason;
  };
  for (const Case& c : std::vector<Case>{
           {"MATCH (n) RETURN n.v AS v UNION MATCH (m) RETURN m.v AS v",
            "UNION"},
           {"MATCH (n) WHERE rand() < 2 RETURN count(*) AS c", "rand()"},
           {"OPTIONAL MATCH (n:NoSuchLabel) RETURN count(*) AS c",
            "OPTIONAL MATCH"},
           {"RETURN 1 AS one", "no MATCH drives the plan"},
       }) {
    auto plan = par.Explain(c.query);
    ASSERT_TRUE(plan.ok()) << c.query << ": " << plan.status().ToString();
    EXPECT_NE(plan->find("Parallel: serial"), std::string::npos)
        << c.query << "\n" << *plan;
    EXPECT_NE(plan->find(c.reason), std::string::npos)
        << c.query << "\n" << *plan;
    // ... and the fallback must still compute the right answer.
    auto r = par.Execute(c.query);
    EXPECT_TRUE(r.ok()) << c.query << ": " << r.status().ToString();
  }

  // Every executed fallback above was counted under its reason
  // (satellite: parallel-coverage regressions are observable in
  // aggregate, not just per-query via EXPLAIN).
  CypherEngine::ParallelStats ps = par.parallel_stats();
  ASSERT_FALSE(ps.serial_reasons.empty());
  uint64_t fallbacks = 0;
  for (const auto& [reason, count] : ps.serial_reasons) fallbacks += count;
  EXPECT_GE(fallbacks, 4u);
}

TEST(ParallelEngine, SerialFallbacksMatchInterpreter) {
  EngineOptions iopts;
  iopts.mode = ExecutionMode::kInterpreter;
  CypherEngine interp(iopts);
  interp.set_default_graph(TestGraph());
  CypherEngine par = ParallelEngine(3);
  for (const char* q : {
           "MATCH (n:A) RETURN n.v AS v UNION MATCH (m:B) RETURN m.v AS v",
           "MATCH (n) WITH n.v AS v ORDER BY v LIMIT 5 RETURN v",
           "OPTIONAL MATCH (n:NoSuchLabel) RETURN n AS n",
           "MATCH (a) WITH a.v AS v, count(*) AS c RETURN v, c ORDER BY v",
       }) {
    auto want = interp.Execute(q);
    auto got = par.Execute(q);
    ASSERT_TRUE(want.ok()) << q << ": " << want.status().ToString();
    ASSERT_TRUE(got.ok()) << q << ": " << got.status().ToString();
    EXPECT_TRUE(want->table.SameBag(got->table))
        << q << "\ninterpreter:\n" << want->table.ToString()
        << "parallel engine:\n" << got->table.ToString();
  }
}

TEST(ParallelEngine, ProfileReportsWorkersAndMorsels) {
  CypherEngine par = ParallelEngine(2);
  if (par.options().num_threads <= 1) {
    GTEST_SKIP() << "GQLITE_THREADS forces serial execution";
  }
  auto prof = par.Profile("MATCH (a)-[:T]->(b) RETURN count(*) AS c");
  ASSERT_TRUE(prof.ok()) << prof.status().ToString();
  EXPECT_NE(prof->find("workers"), std::string::npos) << *prof;
  EXPECT_NE(prof->find("morsels dispatched"), std::string::npos) << *prof;
}

TEST(ParallelEngine, CachedParallelPlansReplanAfterGraphMutation) {
  EngineOptions opts;
  opts.num_threads = 2;
  CypherEngine engine(opts);
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(engine.Execute("CREATE (:P {v: " + std::to_string(i) + "})")
                    .ok());
  }
  const char* q = "MATCH (n:P) RETURN count(*) AS c";
  auto first = engine.Execute(q);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->table.rows()[0][0].AsInt(), 40);
  // Structural change bumps stats_version: the cached plan (and its
  // baked-in worker instances with their scan-domain assumptions) must
  // not be reused.
  ASSERT_TRUE(engine.Execute("CREATE (:P {v: 100}), (:P {v: 101})").ok());
  auto second = engine.Execute(q);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->table.rows()[0][0].AsInt(), 42);
}

TEST(ParallelEngine, PlanCacheKeySeparatesThreadCounts) {
  if (!EffectiveNumThreads(2).ok() || *EffectiveNumThreads(2) != 2u) {
    GTEST_SKIP() << "GQLITE_THREADS overrides this test's thread count";
  }
  CypherEngine engine = ParallelEngine(2);
  const char* q = "MATCH (n) RETURN count(*) AS c";
  auto first = engine.Execute(q);
  ASSERT_TRUE(first.ok());
  auto second = engine.Execute(q);
  ASSERT_TRUE(second.ok());
  EXPECT_GE(engine.plan_cache_stats().hits, 1u);
  EXPECT_TRUE(first->table.SameBag(second->table));
  // Re-keying through set_options: a different worker count must not
  // reuse the 2-thread plan (its baked-in instances are wrong).
  EngineOptions opts = engine.options();
  opts.num_threads = 1;
  engine.set_options(opts);
  auto serial = engine.Execute(q);
  ASSERT_TRUE(serial.ok());
  EXPECT_TRUE(first->table.SameBag(serial->table));
}

// ---- Locking edge cases -----------------------------------------------------

TEST(WorkerPool, ShutdownIsIdempotent) {
  WorkerPool pool(2);
  EXPECT_EQ(pool.size(), 2u);
  pool.Shutdown();
  EXPECT_EQ(pool.size(), 0u);
  pool.Shutdown();  // second call is a no-op
  EXPECT_EQ(pool.size(), 0u);
  // After shutdown, jobs degenerate to the calling thread only.
  int ran = 0;
  ASSERT_TRUE(pool
                  .RunOnAll([&](size_t w) {
                    EXPECT_EQ(w, 0u);
                    ++ran;
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(ran, 1);
  // The destructor after an explicit Shutdown must also be a no-op.
}

TEST(ParallelEngine, ErrorDuringDrainIsDeterministicAndNonPoisoning) {
  // Two failing rows of DIFFERENT error kinds, far apart in scan order:
  // whichever worker stumbles first in wall-clock time, the merge stage
  // must always report the error of the FIRST range in scan order — the
  // division by zero at node 100, never the type error at node 500.
  auto g = std::make_shared<PropertyGraph>();
  for (int i = 0; i < 600; ++i) {
    Value v = Value::Int(1);
    if (i == 100) v = Value::Int(0);
    if (i == 500) v = Value::String("not a number");
    g->CreateNode({"P"}, {{"v", v}});
  }
  EngineOptions opts;
  opts.num_threads = 4;
  CypherEngine engine(opts);
  engine.set_default_graph(g);
  for (int run = 0; run < 5; ++run) {
    auto r = engine.Execute("MATCH (n:P) RETURN 1 / n.v AS x");
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.status().ToString().find("division by zero"),
              std::string::npos)
        << "run " << run << ": " << r.status().ToString();
  }
  // Survivors drained their morsels and the pool is intact: the engine
  // keeps answering queries after the failure.
  auto ok = engine.Execute("MATCH (n:P) WHERE n.v = 1 RETURN count(*) AS c");
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(ok->table.rows()[0][0].AsInt(), 598);
}

TEST(ParallelEngine, MergeOnlySumOverflowStillRaises) {
  // Two near-max values 500 scan positions apart: each range's partial
  // sum is fine; only combining the partials overflows. The chunked
  // parallel aggregation must raise exactly like the serial engine does
  // when it reaches the second value — not wrap.
  auto g = std::make_shared<PropertyGraph>();
  constexpr int64_t kBig = std::numeric_limits<int64_t>::max() - 1;
  for (int i = 0; i < 600; ++i) {
    int64_t v = (i == 50 || i == 550) ? kBig : 0;
    g->CreateNode({"P"}, {{"v", Value::Int(v)}});
  }
  for (size_t threads : {size_t{1}, size_t{4}}) {
    EngineOptions opts;
    opts.num_threads = threads;
    CypherEngine engine(opts);
    engine.set_default_graph(g);
    auto r = engine.Execute("MATCH (n:P) RETURN sum(n.v) AS s");
    ASSERT_FALSE(r.ok()) << threads << " workers";
    EXPECT_NE(r.status().ToString().find("overflow"), std::string::npos)
        << threads << " workers: " << r.status().ToString();
  }
}

TEST(ParallelEngine, IntermediateWithBreakersAreByteIdentical) {
  if (!EffectiveNumThreads(4).ok() || *EffectiveNumThreads(4) != 4u) {
    GTEST_SKIP() << "GQLITE_THREADS overrides this test's thread count";
  }
  // The merge point sits BELOW the root: the WITH breaker runs in the
  // merge stage, the clauses above it (aggregation, final RETURN) run
  // serially on the preloaded result. Output must be byte-identical to
  // the serial engine at every worker count.
  CypherEngine serial = ParallelEngine(1);
  CypherEngine par2 = ParallelEngine(2);
  CypherEngine par4 = ParallelEngine(4);
  for (const char* q : {
           "MATCH (n) WITH n.v AS v ORDER BY v LIMIT 7 "
           "RETURN count(*) AS c, sum(v) AS s",
           "MATCH (n) WITH DISTINCT n.v AS v RETURN count(*) AS c",
           "MATCH (n) WITH n.v AS v ORDER BY v DESC SKIP 3 LIMIT 5 "
           "RETURN collect(v) AS vs",
           "MATCH (a)-[:T]->(b) WITH DISTINCT a.v AS x, b.v AS y "
           "RETURN x, y ORDER BY x, y",
       }) {
    auto want = serial.Execute(q);
    ASSERT_TRUE(want.ok()) << q << ": " << want.status().ToString();
    for (CypherEngine* e : {&par2, &par4}) {
      auto got = e->Execute(q);
      ASSERT_TRUE(got.ok()) << q << ": " << got.status().ToString();
      EXPECT_EQ(want->table.ToString(), got->table.ToString())
          << e->options().num_threads << " workers: " << q;
    }
  }
  EXPECT_GE(par4.parallel_stats().sort_merges +
                par4.parallel_stats().distinct_merges,
            4u)
      << "the breaker queries above must take the parallel merge paths";
}

TEST(ParallelEngine, StatsReadableWhileQueriesExecute) {
  // A monitoring thread polls every stats surface while the main thread
  // executes parallel queries. Execution accumulates into locals and
  // folds under stats_mu_ once per query, so this is TSan-clean (the CI
  // TSan leg runs this suite) and the counters never go backwards.
  CypherEngine engine = ParallelEngine(4);
  AtomicCounter stop;
  uint64_t last_queries = 0;
  bool monotonic = true;
  std::thread reader([&] {
    while (stop.Load() == 0) {
      BatchStats bs = engine.exec_stats();
      uint64_t q = engine.exec_queries();
      CypherEngine::ParallelStats ps = engine.parallel_stats();
      PlanCacheStats cs = engine.plan_cache_stats();
      if (q < last_queries || bs.rows < 0 || ps.morsels > ps.queries * 1000 ||
          cs.hits + cs.misses > 1u << 30) {
        monotonic = false;
      }
      last_queries = q;
    }
  });
  constexpr int kQueries = 30;
  for (int i = 0; i < kQueries; ++i) {
    auto r = engine.Execute("MATCH (a)-[:T]->(b) RETURN count(*) AS c");
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }
  stop.Store(1);
  reader.join();
  EXPECT_TRUE(monotonic);
  EXPECT_EQ(engine.exec_queries(), static_cast<uint64_t>(kQueries));
}

}  // namespace
}  // namespace gqlite
