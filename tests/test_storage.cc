// Storage layer: WAL format (framing, CRC, torn tails), checkpoint
// round-trips, and the Database durability contract (commit / rollback
// / reopen / checkpoint / close) — the crash model of the SIGMOD'18
// engine's persistence layer.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "src/core/database.h"
#include "src/core/session.h"
#include "src/graph/graph_io.h"
#include "src/storage/checkpoint.h"
#include "src/storage/storage_engine.h"
#include "src/storage/wal.h"

namespace gqlite {
namespace {

namespace fs = std::filesystem;

// Fresh scratch directory under the gtest temp root; wiped up-front so
// reruns never see a previous run's files (names are fixed — the
// determinism lint bans clocks/entropy in tests).
std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "gqlite_storage_" + name;
  fs::remove_all(dir);
  return dir;
}

std::string WalPath(const std::string& dir) { return dir + "/wal.log"; }

uint64_t FileSize(const std::string& path) {
  return static_cast<uint64_t>(fs::file_size(path));
}

// Truncates / corrupts raw log bytes to simulate crashes and bit rot.
void TruncateFile(const std::string& path, uint64_t size) {
  fs::resize_file(path, size);
}

void FlipByte(const std::string& path, uint64_t offset) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.good());
  f.seekg(static_cast<std::streamoff>(offset));
  char b = 0;
  f.read(&b, 1);
  b = static_cast<char>(b ^ 0x5a);
  f.seekp(static_cast<std::streamoff>(offset));
  f.write(&b, 1);
}

WalBatch MakeBatch(uint64_t lsn) {
  WalBatch batch;
  batch.lsn = lsn;
  WalOp label;
  label.type = WalOpType::kInternLabel;
  label.id = 1;
  label.name = "Person";
  batch.ops.push_back(label);
  WalOp node;
  node.type = WalOpType::kCreateNode;
  node.id = lsn - 1;  // fresh-graph node ids: batch n creates node n-1
  node.labels = {"Person"};
  node.props = {{"name", Value::String("n")},
                {"age", Value::Int(static_cast<int64_t>(lsn))},
                {"score", Value::Float(2.5)},
                {"active", Value::Bool(true)},
                {"missing", Value::Null()}};
  batch.ops.push_back(node);
  return batch;
}

Database MustOpen(const std::string& dir) {
  auto opened = Database::Open(dir);
  EXPECT_TRUE(opened.ok()) << opened.status().ToString();
  return std::move(*opened);
}

int64_t CountNodes(Database& db) {
  auto r = db.Execute("MATCH (n) RETURN count(n) AS c");
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r->table.rows()[0][0].AsInt();
}

// ---- WAL format units ----------------------------------------------------

constexpr uint64_t kWalHeaderBytes = 12;  // magic "GQLWAL1\n" + u32 version

TEST(WalFormat, EmptyLogIsHeaderOnly) {
  std::string dir = FreshDir("wal_empty");
  ASSERT_TRUE(fs::create_directories(dir));
  auto writer = WalWriter::Open(WalPath(dir));
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();

  auto contents = ReadWal(WalPath(dir));
  ASSERT_TRUE(contents.ok()) << contents.status().ToString();
  EXPECT_TRUE(contents->batches.empty());
  EXPECT_EQ(contents->file_bytes, kWalHeaderBytes);
  EXPECT_EQ(contents->valid_bytes, kWalHeaderBytes);
}

TEST(WalFormat, MissingLogReadsAsEmpty) {
  std::string dir = FreshDir("wal_missing");
  auto contents = ReadWal(WalPath(dir));
  ASSERT_TRUE(contents.ok()) << contents.status().ToString();
  EXPECT_TRUE(contents->batches.empty());
  EXPECT_EQ(contents->file_bytes, 0u);
  EXPECT_EQ(contents->valid_bytes, 0u);
}

TEST(WalFormat, PayloadCodecRoundTrip) {
  WalBatch batch = MakeBatch(7);
  WalOp rel;
  rel.type = WalOpType::kCreateRelationship;
  rel.id = 0;
  rel.src = 7;
  rel.tgt = 7;
  rel.name = "KNOWS";
  rel.props = {{"since", Value::Int(1833)}};
  batch.ops.push_back(rel);

  std::string payload;
  EncodeWalBatchPayload(batch, &payload);
  auto decoded = DecodeWalBatchPayload(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->lsn, 7u);
  ASSERT_EQ(decoded->ops.size(), batch.ops.size());
  for (size_t i = 0; i < batch.ops.size(); ++i) {
    EXPECT_EQ(decoded->ops[i].type, batch.ops[i].type);
    EXPECT_EQ(decoded->ops[i].id, batch.ops[i].id);
    EXPECT_EQ(decoded->ops[i].name, batch.ops[i].name);
    EXPECT_EQ(decoded->ops[i].labels, batch.ops[i].labels);
    ASSERT_EQ(decoded->ops[i].props.size(), batch.ops[i].props.size());
    for (size_t p = 0; p < batch.ops[i].props.size(); ++p) {
      EXPECT_EQ(decoded->ops[i].props[p].first, batch.ops[i].props[p].first);
      EXPECT_EQ(decoded->ops[i].props[p].second.ToString(),
                batch.ops[i].props[p].second.ToString());
    }
  }
}

TEST(WalFormat, AppendThenReadBack) {
  std::string dir = FreshDir("wal_roundtrip");
  ASSERT_TRUE(fs::create_directories(dir));
  {
    auto writer = WalWriter::Open(WalPath(dir));
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->Append(MakeBatch(1)).ok());
    ASSERT_TRUE((*writer)->Append(MakeBatch(2)).ok());
    ASSERT_TRUE((*writer)->Append(MakeBatch(3)).ok());
  }
  auto contents = ReadWal(WalPath(dir));
  ASSERT_TRUE(contents.ok());
  ASSERT_EQ(contents->batches.size(), 3u);
  EXPECT_EQ(contents->batches[0].lsn, 1u);
  EXPECT_EQ(contents->batches[1].lsn, 2u);
  EXPECT_EQ(contents->batches[2].lsn, 3u);
  EXPECT_EQ(contents->valid_bytes, contents->file_bytes);
}

TEST(WalFormat, TornFinalFrameDropsOnlyTheTail) {
  std::string dir = FreshDir("wal_torn");
  ASSERT_TRUE(fs::create_directories(dir));
  uint64_t after_two = 0;
  {
    auto writer = WalWriter::Open(WalPath(dir));
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->Append(MakeBatch(1)).ok());
    ASSERT_TRUE((*writer)->Append(MakeBatch(2)).ok());
    after_two = (*writer)->size();
    ASSERT_TRUE((*writer)->Append(MakeBatch(3)).ok());
  }
  // Cut the last frame mid-payload: a crash during the third commit's
  // write. Every prefix length inside the frame must recover the first
  // two batches.
  uint64_t full = FileSize(WalPath(dir));
  for (uint64_t cut = after_two + 1; cut < full; cut += 3) {
    TruncateFile(WalPath(dir), cut);
    auto contents = ReadWal(WalPath(dir));
    ASSERT_TRUE(contents.ok()) << "cut=" << cut;
    ASSERT_EQ(contents->batches.size(), 2u) << "cut=" << cut;
    EXPECT_EQ(contents->valid_bytes, after_two) << "cut=" << cut;
    EXPECT_EQ(contents->file_bytes, cut) << "cut=" << cut;
  }
}

TEST(WalFormat, CrcCorruptionMidLogDropsFromThere) {
  std::string dir = FreshDir("wal_crc");
  ASSERT_TRUE(fs::create_directories(dir));
  uint64_t after_one = 0;
  {
    auto writer = WalWriter::Open(WalPath(dir));
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->Append(MakeBatch(1)).ok());
    after_one = (*writer)->size();
    ASSERT_TRUE((*writer)->Append(MakeBatch(2)).ok());
    ASSERT_TRUE((*writer)->Append(MakeBatch(3)).ok());
  }
  // Flip one payload byte in the second frame (past its 8-byte frame
  // header): batches 2 AND 3 must both be dropped — a valid-looking
  // frame after a corrupt one could be a ghost of a previous log
  // generation, so recovery never skips over corruption.
  FlipByte(WalPath(dir), after_one + 9);
  auto contents = ReadWal(WalPath(dir));
  ASSERT_TRUE(contents.ok());
  ASSERT_EQ(contents->batches.size(), 1u);
  EXPECT_EQ(contents->batches[0].lsn, 1u);
  EXPECT_EQ(contents->valid_bytes, after_one);
  EXPECT_GT(contents->file_bytes, contents->valid_bytes);
}

TEST(WalFormat, BadMagicIsCorruption) {
  std::string dir = FreshDir("wal_magic");
  ASSERT_TRUE(fs::create_directories(dir));
  {
    const char bytes[] = "NOTAWAL!\x01\x00\x00\x00extra";
    std::ofstream f(WalPath(dir), std::ios::binary);
    f.write(bytes, sizeof(bytes) - 1);
  }
  auto contents = ReadWal(WalPath(dir));
  EXPECT_FALSE(contents.ok());
}

TEST(WalFormat, ReplayIsIdempotentAcrossReads) {
  std::string dir = FreshDir("wal_idem");
  ASSERT_TRUE(fs::create_directories(dir));
  {
    auto writer = WalWriter::Open(WalPath(dir));
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->Append(MakeBatch(1)).ok());
    ASSERT_TRUE((*writer)->Append(MakeBatch(2)).ok());
  }
  // Applying the same log to two fresh graphs yields identical state;
  // re-applying an already-applied batch to the first graph fails
  // loudly (ids would not match) instead of silently double-applying.
  auto contents = ReadWal(WalPath(dir));
  ASSERT_TRUE(contents.ok());
  PropertyGraph a, b;
  for (const WalBatch& batch : contents->batches) {
    ASSERT_TRUE(ApplyWalBatch(&a, batch).ok());
    ASSERT_TRUE(ApplyWalBatch(&b, batch).ok());
  }
  EXPECT_EQ(DumpToCypher(a), DumpToCypher(b));
  EXPECT_FALSE(ApplyWalBatch(&a, contents->batches[0]).ok());
}

// ---- Checkpoint round-trip -----------------------------------------------

TEST(Checkpoint, BodyRoundTripPreservesGraphAndInterners) {
  PropertyGraph g;
  NodeId ada = g.CreateNode({"Person"}, {{"name", Value::String("Ada")},
                                         {"born", Value::Int(1815)}});
  NodeId chas = g.CreateNode({"Person", "Author"},
                             {{"name", Value::String("Charles")}});
  NodeId math = g.CreateNode({"Topic"}, {{"name", Value::String("Math")}});
  ASSERT_TRUE(g.CreateRelationship(ada, chas, "KNOWS",
                                   {{"since", Value::Int(1833)}})
                  .ok());
  ASSERT_TRUE(g.CreateRelationship(ada, math, "LIKES").ok());
  // Tombstones and label churn must survive verbatim too.
  NodeId doomed = g.CreateNode({"Person"});
  ASSERT_TRUE(g.DetachDeleteNode(doomed).ok());
  g.AddLabel(chas, "Emeritus");
  g.RemoveLabel(chas, "Author");

  std::string body;
  StorageInternals::EncodeGraph(g, /*last_lsn=*/42, &body);
  auto recovered = StorageInternals::DecodeGraph(body);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered->last_lsn, 42u);
  const PropertyGraph& r = *recovered->graph;

  EXPECT_EQ(DumpToCypher(r), DumpToCypher(g));
  EXPECT_EQ(r.NumNodes(), g.NumNodes());
  EXPECT_EQ(r.NumNodeSlots(), g.NumNodeSlots());  // tombstone kept
  EXPECT_EQ(r.NumRels(), g.NumRels());
  EXPECT_EQ(r.stats_version(), g.stats_version());

  // Interners are bit-identical: same ids, same strings, in order —
  // including "Author", which no live node references anymore.
  ASSERT_EQ(r.labels().size(), g.labels().size());
  for (SymbolId id = 1; id < g.labels().size(); ++id) {
    EXPECT_EQ(r.labels().ToString(id), g.labels().ToString(id));
  }
  ASSERT_EQ(r.types().size(), g.types().size());
  for (SymbolId id = 1; id < g.types().size(); ++id) {
    EXPECT_EQ(r.types().ToString(id), g.types().ToString(id));
  }
  ASSERT_EQ(r.keys().size(), g.keys().size());
  for (SymbolId id = 1; id < g.keys().size(); ++id) {
    EXPECT_EQ(r.keys().ToString(id), g.keys().ToString(id));
  }

  // Statistics survive: label counts drive the planner's estimates.
  EXPECT_EQ(r.LabelCounts(), g.LabelCounts());
}

TEST(Checkpoint, FileRoundTripAndCorruptionDetection) {
  std::string dir = FreshDir("ckp_file");
  ASSERT_TRUE(fs::create_directories(dir));
  std::string path = dir + "/checkpoint.gql";

  PropertyGraph g;
  g.CreateNode({"A"}, {{"x", Value::Int(1)}});
  ASSERT_TRUE(WriteCheckpointFile(path, g, /*last_lsn=*/9).ok());

  auto loaded = ReadCheckpointFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->last_lsn, 9u);
  EXPECT_EQ(DumpToCypher(*loaded->graph), DumpToCypher(g));

  EXPECT_FALSE(ReadCheckpointFile(dir + "/nope.gql").ok());  // NotFound

  // Any flipped body byte must fail the CRC, not load garbage.
  FlipByte(path, FileSize(path) - 3);
  EXPECT_FALSE(ReadCheckpointFile(path).ok());
}

// ---- Database durability contract ----------------------------------------

TEST(Durability, CommitSurvivesReopen) {
  std::string dir = FreshDir("db_reopen");
  {
    Database db = MustOpen(dir);
    EXPECT_EQ(CountNodes(db), 0);
    ASSERT_TRUE(db.Execute("CREATE (:Person {name: 'Ada', born: 1815})"
                           "-[:KNOWS {since: 1833}]->"
                           "(:Person {name: 'Charles'})")
                    .ok());
    ASSERT_TRUE(db.Execute("MATCH (p {name: 'Ada'}) SET p.famous = true")
                    .ok());
  }
  Database db = MustOpen(dir);
  EXPECT_EQ(CountNodes(db), 2);
  auto r = db.Execute(
      "MATCH (a)-[k:KNOWS]->(b) "
      "RETURN a.name, a.famous, k.since, b.name");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->table.rows().size(), 1u);
  EXPECT_EQ(r->table.rows()[0][0].ToString(), "'Ada'");
  EXPECT_EQ(r->table.rows()[0][1].ToString(), "true");
  EXPECT_EQ(r->table.rows()[0][2].ToString(), "1833");
  EXPECT_EQ(r->table.rows()[0][3].ToString(), "'Charles'");
}

TEST(Durability, DoubleReopenIsIdempotent) {
  std::string dir = FreshDir("db_idem");
  {
    Database db = MustOpen(dir);
    ASSERT_TRUE(db.Execute("CREATE (:A {x: 1})-[:R]->(:B {y: 2})").ok());
    ASSERT_TRUE(db.Execute("MATCH (b:B) SET b.y = 3").ok());
  }
  std::string first, second;
  {
    Database db = MustOpen(dir);
    first = DumpToCypher(db.graph());
  }
  {
    Database db = MustOpen(dir);
    second = DumpToCypher(db.graph());
  }
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

TEST(Durability, RollbackIsNotPersisted) {
  std::string dir = FreshDir("db_rollback");
  {
    Database db = MustOpen(dir);
    ASSERT_TRUE(db.Execute("CREATE (:Keep)").ok());
    auto session = db.CreateSession();
    ASSERT_TRUE(session->Begin(TxnMode::kWrite).ok());
    ASSERT_TRUE(session->Execute("CREATE (:Gone), (:Gone)").ok());
    ASSERT_TRUE(session->Rollback().ok());
    // A later committed transaction still lands in the log.
    ASSERT_TRUE(session->Begin(TxnMode::kWrite).ok());
    ASSERT_TRUE(session->Execute("CREATE (:Keep)").ok());
    ASSERT_TRUE(session->Commit().ok());
  }
  Database db = MustOpen(dir);
  auto r = db.Execute("MATCH (n:Keep) RETURN count(n) AS c");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->table.rows()[0][0].AsInt(), 2);
  auto gone = db.Execute("MATCH (n:Gone) RETURN count(n) AS c");
  ASSERT_TRUE(gone.ok());
  EXPECT_EQ(gone->table.rows()[0][0].AsInt(), 0);
}

TEST(Durability, CheckpointTruncatesWalAndReopens) {
  std::string dir = FreshDir("db_ckpt");
  {
    Database db = MustOpen(dir);
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(db.Execute("CREATE (:N {i: " + std::to_string(i) + "})")
                      .ok());
    }
    EXPECT_GT(FileSize(WalPath(dir)), kWalHeaderBytes);
    ASSERT_TRUE(db.Checkpoint().ok());
    // Checkpoint folds the log into the baseline and truncates it.
    EXPECT_EQ(FileSize(WalPath(dir)), kWalHeaderBytes);
    EXPECT_TRUE(fs::exists(dir + "/checkpoint.gql"));
    // Post-checkpoint commits append to the fresh log.
    ASSERT_TRUE(db.Execute("CREATE (:N {i: 10})").ok());
    EXPECT_GT(FileSize(WalPath(dir)), kWalHeaderBytes);
  }
  Database db = MustOpen(dir);
  EXPECT_EQ(CountNodes(db), 11);
}

TEST(Durability, PlanEstimatesSurviveCheckpointAndReopen) {
  std::string dir = FreshDir("db_estimates");
  const std::string query =
      "MATCH (a:Person)-[:KNOWS]->(b:Person) WHERE b.born < 1800 "
      "RETURN a.name";
  std::string before;
  {
    Database db = MustOpen(dir);
    for (int i = 0; i < 32; ++i) {
      ASSERT_TRUE(
          db.Execute("CREATE (:Person {name: 'p" + std::to_string(i) +
                     "', born: " + std::to_string(1780 + i) + "})")
              .ok());
    }
    ASSERT_TRUE(db.Execute("MATCH (a:Person {name: 'p0'}), "
                           "(b:Person {name: 'p1'}) "
                           "CREATE (a)-[:KNOWS]->(b)")
                    .ok());
    auto plan = db.Explain(query);
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    before = *plan;
    ASSERT_TRUE(db.Checkpoint().ok());
  }
  // The reopened planner must see the same statistics (degree
  // histograms, NDV sketches, label counts) and print the same plan
  // with the same cardinality estimates.
  Database db = MustOpen(dir);
  auto plan = db.Explain(query);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(*plan, before);
}

TEST(Durability, TornWalTailIsDiscardedOnOpen) {
  std::string dir = FreshDir("db_torn");
  {
    Database db = MustOpen(dir);
    ASSERT_TRUE(db.Execute("CREATE (:A {x: 1})").ok());
    ASSERT_TRUE(db.Execute("CREATE (:B {x: 2})").ok());
  }
  // Chop bytes off the final frame: the B commit is torn away, A
  // survives, and the next open both recovers and resumes appending.
  TruncateFile(WalPath(dir), FileSize(WalPath(dir)) - 5);
  {
    Database db = MustOpen(dir);
    EXPECT_EQ(CountNodes(db), 1);
    ASSERT_TRUE(db.Execute("CREATE (:C {x: 3})").ok());
  }
  Database db = MustOpen(dir);
  EXPECT_EQ(CountNodes(db), 2);
  EXPECT_TRUE(db.Execute("MATCH (c:C) RETURN c").ok());
}

TEST(Durability, TornWalHeaderIsRewrittenDurably) {
  std::string dir = FreshDir("db_torn_header");
  {
    Database db = MustOpen(dir);
    ASSERT_TRUE(db.Execute("CREATE (:A)").ok());
  }
  // Power loss during the very first header write leaves a log shorter
  // than the 12-byte header: every frame is gone, recovery starts from
  // an empty graph, rewrites the header — and must KEEP it when it
  // truncates the torn remainder (a headerless log would swallow later
  // commits silently until the next open failed with Corruption).
  TruncateFile(WalPath(dir), 5);
  {
    Database db = MustOpen(dir);
    EXPECT_EQ(CountNodes(db), 0);
    ASSERT_TRUE(db.Execute("CREATE (:K)").ok());
  }
  Database db = MustOpen(dir);
  EXPECT_EQ(CountNodes(db), 1);
}

TEST(Durability, MoveAssignFlushesTheReplacedDatabase) {
  std::string dir = FreshDir("db_move_assign");
  {
    Database db = MustOpen(dir);
    // A setup-API write only becomes durable at the next transaction
    // boundary — here the Close() that move-assignment runs on the
    // database being replaced (a defaulted move would drop it).
    db.graph().CreateNode({"Moved"}, {});
    Database other = MustOpen(FreshDir("db_move_assign_other"));
    db = std::move(other);
  }
  Database db = MustOpen(dir);
  EXPECT_EQ(CountNodes(db), 1);
  EXPECT_TRUE(db.Execute("MATCH (m:Moved) RETURN m").ok());
}

TEST(Durability, SetDefaultGraphRejectedOnDurableDatabase) {
  std::string dir = FreshDir("db_setdefault");
  Database db = MustOpen(dir);
  EXPECT_FALSE(db.engine()
                   .set_default_graph(std::make_shared<PropertyGraph>())
                   .ok());
  // In-memory databases keep the setup API.
  auto mem = Database::OpenInMemory();
  ASSERT_TRUE(mem.ok());
  EXPECT_TRUE(mem->engine()
                  .set_default_graph(std::make_shared<PropertyGraph>())
                  .ok());
}

TEST(Durability, CloseFlushesAndRejectsLaterWrites) {
  std::string dir = FreshDir("db_close");
  Database db = MustOpen(dir);
  ASSERT_TRUE(db.Execute("CREATE (:A)").ok());
  ASSERT_TRUE(db.Close().ok());
  ASSERT_TRUE(db.Close().ok());  // idempotent
  // Reads of the in-memory state still work; writes are refused.
  EXPECT_EQ(CountNodes(db), 1);
  EXPECT_FALSE(db.Execute("CREATE (:B)").ok());

  Database reopened = MustOpen(dir);
  EXPECT_EQ(CountNodes(reopened), 1);
}

TEST(Durability, SetupApiWritesFlushAtTransactionBoundary) {
  std::string dir = FreshDir("db_setupapi");
  {
    Database db = MustOpen(dir);
    // graph() is the fixture-loading backdoor: mutations bypass the
    // session layer but must still be logged at the next boundary.
    db.graph().CreateNode({"Seeded"}, {{"k", Value::Int(1)}});
    ASSERT_TRUE(db.Execute("CREATE (:Committed)").ok());
  }
  Database db = MustOpen(dir);
  EXPECT_EQ(CountNodes(db), 2);
  EXPECT_TRUE(db.Execute("MATCH (s:Seeded) RETURN s").ok());
}

TEST(Durability, InMemoryDatabaseWritesNoFiles) {
  auto db = Database::OpenInMemory();
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE(db->Execute("CREATE (:A)").ok());
  EXPECT_TRUE(db->Checkpoint().ok());  // documented no-op
  EXPECT_TRUE(db->Close().ok());
}

}  // namespace
}  // namespace gqlite
