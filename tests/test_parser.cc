#include <gtest/gtest.h>

#include "src/frontend/analyzer.h"
#include "src/frontend/ast_printer.h"
#include "src/frontend/parser.h"

namespace gqlite {
namespace {

using ast::Clause;
using ast::Expr;

/// Parses and returns the canonical unparse, failing the test on error.
std::string Canon(std::string_view q) {
  auto r = ParseQuery(q);
  EXPECT_TRUE(r.ok()) << "parse of: " << q << "\n  " << r.status().ToString();
  if (!r.ok()) return "<error>";
  return UnparseQuery(*r);
}

std::string CanonExpr(std::string_view e) {
  auto r = ParseExpression(e);
  EXPECT_TRUE(r.ok()) << "parse of: " << e << "\n  " << r.status().ToString();
  if (!r.ok()) return "<error>";
  return UnparseExpr(**r);
}

TEST(Parser, SimpleMatchReturn) {
  EXPECT_EQ(Canon("MATCH (n) RETURN n"), "MATCH (n) RETURN n");
  EXPECT_EQ(Canon("match (n) return n"), "MATCH (n) RETURN n");
}

TEST(Parser, NodePatternForms) {
  EXPECT_EQ(Canon("MATCH () RETURN 1"), "MATCH () RETURN 1");
  EXPECT_EQ(Canon("MATCH (n:Person) RETURN n"), "MATCH (n:Person) RETURN n");
  EXPECT_EQ(Canon("MATCH (n:Person:Male {name: 'x', age: 3}) RETURN n"),
            "MATCH (n:Person:Male {name: 'x', age: 3}) RETURN n");
  EXPECT_EQ(Canon("MATCH (:Person) RETURN 1"), "MATCH (:Person) RETURN 1");
}

TEST(Parser, RelPatternDirections) {
  EXPECT_EQ(Canon("MATCH (a)-->(b) RETURN a"), "MATCH (a)-->(b) RETURN a");
  EXPECT_EQ(Canon("MATCH (a)<--(b) RETURN a"), "MATCH (a)<--(b) RETURN a");
  EXPECT_EQ(Canon("MATCH (a)--(b) RETURN a"), "MATCH (a)--(b) RETURN a");
  EXPECT_EQ(Canon("MATCH (a)-[r]->(b) RETURN r"),
            "MATCH (a)-[r]->(b) RETURN r");
  EXPECT_EQ(Canon("MATCH (a)<-[:CITES]-(b) RETURN a"),
            "MATCH (a)<-[:CITES]-(b) RETURN a");
  EXPECT_EQ(Canon("MATCH (a)-[r:KNOWS|LIKES]-(b) RETURN r"),
            "MATCH (a)-[r:KNOWS|LIKES]-(b) RETURN r");
  // Both-ways arrows are rejected.
  EXPECT_FALSE(ParseQuery("MATCH (a)<-[r]->(b) RETURN r").ok());
}

TEST(Parser, VarLengthForms) {
  // Figure 3: len ::= * | *d | *d1.. | *..d2 | *d1..d2.
  EXPECT_EQ(Canon("MATCH (a)-[*]->(b) RETURN a"),
            "MATCH (a)-[*..]->(b) RETURN a");
  EXPECT_EQ(Canon("MATCH (a)-[*2]->(b) RETURN a"),
            "MATCH (a)-[*2]->(b) RETURN a");
  EXPECT_EQ(Canon("MATCH (a)-[*2..]->(b) RETURN a"),
            "MATCH (a)-[*2..]->(b) RETURN a");
  EXPECT_EQ(Canon("MATCH (a)-[*..3]->(b) RETURN a"),
            "MATCH (a)-[*..3]->(b) RETURN a");
  EXPECT_EQ(Canon("MATCH (a)-[*1..2]->(b) RETURN a"),
            "MATCH (a)-[*1..2]->(b) RETURN a");
  EXPECT_EQ(Canon("MATCH (a)-[:KNOWS*1..2 {since: 1985}]-(b) RETURN a"),
            "MATCH (a)-[:KNOWS*1..2 {since: 1985}]-(b) RETURN a");
}

TEST(Parser, NamedPathAndPatternTuple) {
  EXPECT_EQ(Canon("MATCH p = (a)-[r]->(b), (c) RETURN p"),
            "MATCH p = (a)-[r]->(b), (c) RETURN p");
}

TEST(Parser, OptionalMatchAndWhere) {
  EXPECT_EQ(Canon("OPTIONAL MATCH (r)-[:SUPERVISES]->(s:Student) RETURN s"),
            "OPTIONAL MATCH (r)-[:SUPERVISES]->(s:Student) RETURN s");
  EXPECT_EQ(Canon("MATCH (n) WHERE n.age > 3 RETURN n"),
            "MATCH (n) WHERE (n.age > 3) RETURN n");
}

TEST(Parser, PaperMainExampleQuery) {
  // The full §3 worked-example query must parse.
  const char* q = R"(
    MATCH (r:Researcher)
    OPTIONAL MATCH (r)-[:SUPERVISES]->(s:Student)
    WITH r, count(s) AS studentsSupervised
    MATCH (r)-[:AUTHORS]->(p1:Publication)
    OPTIONAL MATCH (p1)<-[:CITES*]-(p2:Publication)
    RETURN r.name, studentsSupervised,
           count(DISTINCT p2) AS citedCount)";
  auto r = ParseQuery(q);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->parts.size(), 1u);
  EXPECT_EQ(r->parts[0].clauses.size(), 6u);
  auto info = Analyze(*r);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_FALSE(info->updating);
  EXPECT_EQ(info->columns,
            (std::vector<std::string>{"r.name", "studentsSupervised",
                                      "citedCount"}));
}

TEST(Parser, PaperIndustryQueries) {
  // §3 network management.
  EXPECT_EQ(
      Canon("MATCH (svc:Service)<-[:DEPENDS_ON*]-(dep:Service) "
            "RETURN svc, count(DISTINCT dep) AS dependents "
            "ORDER BY dependents DESC LIMIT 1"),
      "MATCH (svc:Service)<-[:DEPENDS_ON*..]-(dep:Service) "
      "RETURN svc, count(DISTINCT dep) AS dependents "
      "ORDER BY dependents DESC LIMIT 1");
  // §3 fraud detection (with the paper's fraudRing filter corrected to the
  // aliased name; see DESIGN.md).
  const char* q = R"(
    MATCH (accHolder:AccountHolder)-[:HAS]->(pInfo)
    WHERE pInfo:SSN OR pInfo:PhoneNumber OR pInfo:Address
    WITH pInfo,
         collect(accHolder.uniqueId) AS accountHolders,
         count(*) AS fraudRingCount
    WHERE fraudRingCount > 1
    RETURN accountHolders,
           labels(pInfo) AS personalInformation,
           fraudRingCount)";
  auto r = ParseQuery(q);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_TRUE(Analyze(*r).ok()) << Analyze(*r).status().ToString();
}

TEST(Parser, WithProjectionAndOrdering) {
  EXPECT_EQ(Canon("MATCH (n) WITH n.x AS x ORDER BY x SKIP 1 LIMIT 2 "
                  "WHERE x > 0 RETURN x"),
            "MATCH (n) WITH n.x AS x ORDER BY x SKIP 1 LIMIT 2 "
            "WHERE (x > 0) RETURN x");
  EXPECT_EQ(Canon("MATCH (n) WITH DISTINCT n RETURN n"),
            "MATCH (n) WITH DISTINCT n RETURN n");
  EXPECT_EQ(Canon("MATCH (n) RETURN * ORDER BY n.x DESC"),
            "MATCH (n) RETURN * ORDER BY n.x DESC");
}

TEST(Parser, Unions) {
  auto r = ParseQuery("MATCH (a:X) RETURN a AS n UNION MATCH (a:Y) RETURN a "
                      "AS n UNION ALL MATCH (a:Z) RETURN a AS n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->parts.size(), 3u);
  ASSERT_EQ(r->union_all.size(), 2u);
  EXPECT_FALSE(r->union_all[0]);
  EXPECT_TRUE(r->union_all[1]);
}

TEST(Parser, Unwind) {
  EXPECT_EQ(Canon("UNWIND [1, 2, 3] AS x RETURN x"),
            "UNWIND [1, 2, 3] AS x RETURN x");
}

TEST(Parser, UpdateClauses) {
  EXPECT_EQ(Canon("CREATE (n:Person {name: 'x'})-[:KNOWS]->(m)"),
            "CREATE (n:Person {name: 'x'})-[:KNOWS]->(m)");
  EXPECT_EQ(Canon("MATCH (n) DELETE n"), "MATCH (n) DELETE n");
  EXPECT_EQ(Canon("MATCH (n) DETACH DELETE n"), "MATCH (n) DETACH DELETE n");
  EXPECT_EQ(Canon("MATCH (n) SET n.x = 1, n:Label, n += {y: 2}"),
            "MATCH (n) SET n.x = 1, n:Label, n += {y: 2}");
  EXPECT_EQ(Canon("MATCH (n) REMOVE n.x, n:Label"),
            "MATCH (n) REMOVE n.x, n:Label");
  EXPECT_EQ(Canon("MERGE (n:Person {name: 'x'}) ON CREATE SET n.c = 1 "
                  "ON MATCH SET n.m = 2"),
            "MERGE (n:Person {name: 'x'}) ON CREATE SET n.c = 1 "
            "ON MATCH SET n.m = 2");
}

TEST(Parser, Cypher10GraphClauses) {
  // Example 6.1 of the paper.
  const char* q = R"(
    FROM GRAPH soc_net AT "hdfs://host/soc_network"
    MATCH (a)-[r1:FRIEND]-()-[r2:FRIEND]-(b)
    WHERE abs(r2.since - r1.since) < $duration
    WITH DISTINCT a, b
    RETURN GRAPH friends OF (a)-[:SHARE_FRIEND]->(b))";
  auto r = ParseQuery(q);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->parts[0].clauses[0]->kind, Clause::Kind::kFromGraph);
  EXPECT_EQ(r->parts[0].clauses.back()->kind, Clause::Kind::kReturnGraph);
  // Second composed query of Example 6.1 (QUERY GRAPH alias).
  const char* q2 = R"(
    QUERY GRAPH friends
    MATCH (a)-[:SHARE_FRIEND]-(b)
    FROM GRAPH register AT "bolt://host/citizens"
    MATCH (a)-[:IN]->(c:City)<-[:IN]-(b)
    RETURN *)";
  EXPECT_TRUE(ParseQuery(q2).ok()) << ParseQuery(q2).status().ToString();
}

// ---- Expressions -----------------------------------------------------------

TEST(ParserExpr, Precedence) {
  EXPECT_EQ(CanonExpr("1 + 2 * 3"), "(1 + (2 * 3))");
  EXPECT_EQ(CanonExpr("(1 + 2) * 3"), "((1 + 2) * 3)");
  EXPECT_EQ(CanonExpr("1 < 2 AND 3 < 4 OR x"),
            "(((1 < 2) AND (3 < 4)) OR x)");
  EXPECT_EQ(CanonExpr("NOT a AND b"), "((NOT a) AND b)");
  EXPECT_EQ(CanonExpr("a XOR b OR c"), "((a XOR b) OR c)");
  EXPECT_EQ(CanonExpr("2 ^ 3 ^ 2"), "(2 ^ (3 ^ 2))");  // right-assoc
  EXPECT_EQ(CanonExpr("-2 + 3"), "((- 2) + 3)");
  EXPECT_EQ(CanonExpr("1 - 2 - 3"), "((1 - 2) - 3)");
}

TEST(ParserExpr, StringsListsMaps) {
  EXPECT_EQ(CanonExpr("'a' STARTS WITH 'b'"), "('a' STARTS WITH 'b')");
  EXPECT_EQ(CanonExpr("x ENDS WITH 'b' OR x CONTAINS 'c'"),
            "((x ENDS WITH 'b') OR (x CONTAINS 'c'))");
  EXPECT_EQ(CanonExpr("1 IN [1, 2]"), "(1 IN [1, 2])");
  EXPECT_EQ(CanonExpr("{a: 1, b: 'x'}"), "{a: 1, b: 'x'}");
  EXPECT_EQ(CanonExpr("x[0]"), "x[0]");
  EXPECT_EQ(CanonExpr("x[1..3]"), "x[1..3]");
  EXPECT_EQ(CanonExpr("x[..3]"), "x[..3]");
  EXPECT_EQ(CanonExpr("x[1..]"), "x[1..]");
}

TEST(ParserExpr, NullChecks) {
  EXPECT_EQ(CanonExpr("x IS NULL"), "(x IS NULL)");
  EXPECT_EQ(CanonExpr("x IS NOT NULL"), "(x IS NOT NULL)");
}

TEST(ParserExpr, FunctionsAndAggregates) {
  EXPECT_EQ(CanonExpr("count(*)"), "count(*)");
  EXPECT_EQ(CanonExpr("COUNT(DISTINCT x)"), "count(DISTINCT x)");
  EXPECT_EQ(CanonExpr("coalesce(a, b, 1)"), "coalesce(a, b, 1)");
  EXPECT_EQ(CanonExpr("toUpper('x')"), "toupper('x')");
}

TEST(ParserExpr, CaseForms) {
  EXPECT_EQ(CanonExpr("CASE x WHEN 1 THEN 'a' ELSE 'b' END"),
            "CASE x WHEN 1 THEN 'a' ELSE 'b' END");
  EXPECT_EQ(CanonExpr("CASE WHEN x > 0 THEN 'pos' END"),
            "CASE WHEN (x > 0) THEN 'pos' END");
  EXPECT_FALSE(ParseExpression("CASE x END").ok());
}

TEST(ParserExpr, ListComprehension) {
  EXPECT_EQ(CanonExpr("[x IN list WHERE x > 0 | x * 2]"),
            "[x IN list WHERE (x > 0) | (x * 2)]");
  EXPECT_EQ(CanonExpr("[x IN list | x]"), "[x IN list | x]");
  EXPECT_EQ(CanonExpr("[x IN list WHERE x]"), "[x IN list WHERE x]");
}

TEST(ParserExpr, LabelPredicate) {
  EXPECT_EQ(CanonExpr("pInfo:SSN"), "pInfo:SSN");
  EXPECT_EQ(CanonExpr("n:A:B"), "n:A:B");
}

TEST(ParserExpr, PatternPredicate) {
  EXPECT_EQ(CanonExpr("(a)-[:KNOWS]->(b)"), "(a)-[:KNOWS]->(b)");
  EXPECT_EQ(CanonExpr("exists((a)-[:KNOWS]->())"),
            "exists((a)-[:KNOWS]->())");
  // Plain parenthesized arithmetic still works.
  EXPECT_EQ(CanonExpr("(a) - (b)"), "(a - b)");
}

TEST(ParserExpr, Parameters) {
  EXPECT_EQ(CanonExpr("$p + 1"), "($p + 1)");
}

// ---- Round-trip property ----------------------------------------------------

TEST(Parser, RoundTripFixpoint) {
  const char* queries[] = {
      "MATCH (a)-[r:KNOWS*1..2]->(b) WHERE a.x = 1 RETURN a, r ORDER BY a.x",
      "MATCH (a), (b) WHERE (a)-[:T]->(b) RETURN count(*)",
      "UNWIND [1, 2] AS x WITH x AS y WHERE y > 1 RETURN y LIMIT 1",
      "CREATE (a)-[:T {w: 1}]->(b) SET a.x = 2 REMOVE a:L",
      "MERGE (a {k: 1}) ON CREATE SET a.c = 1 RETURN a",
      "MATCH (n) RETURN DISTINCT n.name AS name UNION MATCH (m) RETURN "
      "m.name AS name",
  };
  for (const char* q : queries) {
    std::string once = Canon(q);
    std::string twice = Canon(once);
    EXPECT_EQ(once, twice) << "not a fixpoint: " << q;
  }
}

// ---- Errors -----------------------------------------------------------------

TEST(ParserErrors, Syntax) {
  EXPECT_FALSE(ParseQuery("").ok());
  EXPECT_FALSE(ParseQuery("MATCH").ok());
  EXPECT_FALSE(ParseQuery("MATCH (a RETURN a").ok());
  EXPECT_FALSE(ParseQuery("MATCH (a) RETURN").ok());
  EXPECT_FALSE(ParseQuery("RETURN 1 RETURN 2").ok());
  EXPECT_FALSE(ParseQuery("MATCH (a) BOGUS x RETURN a").ok());
  EXPECT_FALSE(ParseQuery("MATCH (a) RETURN a extra").ok());
  EXPECT_FALSE(ParseQuery("MERGE (a), (b)").ok());
}

TEST(ParserErrors, MessagesCarryPosition) {
  auto r = ParseQuery("MATCH (a\nRETURN a");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("2:"), std::string::npos)
      << r.status().message();
}

// ---- Analyzer ---------------------------------------------------------------

TEST(Analyzer, UndefinedVariable) {
  auto q = ParseQuery("MATCH (a) RETURN b");
  ASSERT_TRUE(q.ok());
  auto info = Analyze(*q);
  ASSERT_FALSE(info.ok());
  EXPECT_EQ(info.status().code(), StatusCode::kSemanticError);
}

TEST(Analyzer, VariableOutOfScopeAfterWith) {
  // §3: "the variable s is no longer in scope after line 3".
  auto q = ParseQuery(
      "MATCH (r)-[:SUPERVISES]->(s) WITH r, count(s) AS c RETURN s");
  ASSERT_TRUE(q.ok());
  EXPECT_FALSE(Analyze(*q).ok());
}

TEST(Analyzer, KindMismatch) {
  auto q = ParseQuery("MATCH (a)-[a]->(b) RETURN a");
  ASSERT_TRUE(q.ok());
  EXPECT_FALSE(Analyze(*q).ok());
}

TEST(Analyzer, AggregateInWhereRejected) {
  auto q = ParseQuery("MATCH (a) WHERE count(a) > 1 RETURN a");
  ASSERT_TRUE(q.ok());
  EXPECT_FALSE(Analyze(*q).ok());
}

TEST(Analyzer, NestedAggregateRejected) {
  auto q = ParseQuery("MATCH (a) RETURN count(count(a))");
  ASSERT_TRUE(q.ok());
  EXPECT_FALSE(Analyze(*q).ok());
}

TEST(Analyzer, DuplicateColumnRejected) {
  auto q = ParseQuery("MATCH (a) RETURN a.x AS y, a.z AS y");
  ASSERT_TRUE(q.ok());
  EXPECT_FALSE(Analyze(*q).ok());
}

TEST(Analyzer, WithRequiresAlias) {
  auto q = ParseQuery("MATCH (a) WITH a.x RETURN 1");
  ASSERT_TRUE(q.ok());
  EXPECT_FALSE(Analyze(*q).ok());
  auto q2 = ParseQuery("MATCH (a) WITH a RETURN a");
  ASSERT_TRUE(q2.ok());
  EXPECT_TRUE(Analyze(*q2).ok());
}

TEST(Analyzer, UnionColumnMismatch) {
  auto q = ParseQuery("MATCH (a) RETURN a UNION MATCH (b) RETURN b");
  ASSERT_TRUE(q.ok());
  EXPECT_FALSE(Analyze(*q).ok());
  auto q2 = ParseQuery("MATCH (a) RETURN a AS n UNION MATCH (b) RETURN b AS n");
  ASSERT_TRUE(q2.ok());
  EXPECT_TRUE(Analyze(*q2).ok());
}

TEST(Analyzer, UpdatingQueriesNeedNoReturn) {
  auto q = ParseQuery("CREATE (a)");
  ASSERT_TRUE(q.ok());
  auto info = Analyze(*q);
  ASSERT_TRUE(info.ok());
  EXPECT_TRUE(info->updating);
  // Read-only query without RETURN is an error.
  auto q2 = ParseQuery("MATCH (a) WITH a AS b");
  ASSERT_TRUE(q2.ok());
  EXPECT_FALSE(Analyze(*q2).ok());
}

TEST(Analyzer, CreateRestrictions) {
  auto q = ParseQuery("MATCH (a) CREATE (a)-[:T*1..2]->(b)");
  ASSERT_TRUE(q.ok());
  EXPECT_FALSE(Analyze(*q).ok());
  auto q2 = ParseQuery("MATCH (a) CREATE (a)-[]->(b)");
  ASSERT_TRUE(q2.ok());
  EXPECT_FALSE(Analyze(*q2).ok());  // type required
  auto q3 = ParseQuery("MATCH (a) CREATE (a)-[:T]-(b)");
  ASSERT_TRUE(q3.ok());
  EXPECT_FALSE(Analyze(*q3).ok());  // direction required
}

TEST(Analyzer, ReturnStarNeedsScope) {
  auto q = ParseQuery("RETURN *");
  ASSERT_TRUE(q.ok());
  EXPECT_FALSE(Analyze(*q).ok());
}

TEST(Analyzer, PatternPredicateVariablesMustBeBound) {
  auto q = ParseQuery("MATCH (a) WHERE (a)-[:T]->(zzz) RETURN a");
  ASSERT_TRUE(q.ok());
  EXPECT_FALSE(Analyze(*q).ok());
}

}  // namespace
}  // namespace gqlite
