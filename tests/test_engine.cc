// Public-API tests: CypherEngine end to end — updates, MERGE, parameters,
// EXPLAIN, temporal values, Cypher 10 multi-graph composition
// (Example 6.1), and error reporting.

#include <gtest/gtest.h>

#include <cstdlib>
#include <optional>
#include <string>

#include "src/core/engine.h"
#include "src/workload/generators.h"
#include "src/workload/paper_graphs.h"

namespace gqlite {
namespace {

TEST(Engine, QuickstartCreateAndMatch) {
  CypherEngine engine;
  auto created = engine.Execute(
      "CREATE (a:Person {name: 'Ada'})-[:KNOWS {since: 1842}]->"
      "(b:Person {name: 'Charles'})");
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  EXPECT_EQ(created->stats.nodes_created, 2);
  EXPECT_EQ(created->stats.rels_created, 1);

  auto rows = engine.Execute(
      "MATCH (a:Person)-[k:KNOWS]->(b) RETURN a.name, k.since, b.name");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->table.NumRows(), 1u);
  EXPECT_EQ(rows->table.rows()[0][0].AsString(), "Ada");
  EXPECT_EQ(rows->table.rows()[0][1].AsInt(), 1842);
  EXPECT_EQ(rows->table.rows()[0][2].AsString(), "Charles");
}

TEST(Engine, BothModesAgreeOnPaperQuery) {
  workload::PaperFigure1 fig = workload::MakePaperFigure1Graph();
  const char* q =
      "MATCH (r:Researcher) "
      "OPTIONAL MATCH (r)-[:SUPERVISES]->(s:Student) "
      "WITH r, count(s) AS studentsSupervised "
      "MATCH (r)-[:AUTHORS]->(p1:Publication) "
      "OPTIONAL MATCH (p1)<-[:CITES*]-(p2:Publication) "
      "RETURN r.name, studentsSupervised, count(DISTINCT p2) AS citedCount";

  EngineOptions interp_opts;
  interp_opts.mode = ExecutionMode::kInterpreter;
  CypherEngine interp_engine(interp_opts);
  interp_engine.RegisterGraph(GraphCatalog::kDefaultGraphName,
                                        fig.graph);
  // Re-fetch: the engine binds the default graph at construction.
  EngineOptions volcano_opts;
  volcano_opts.mode = ExecutionMode::kVolcano;
  CypherEngine volcano_engine(volcano_opts);

  // Run against the paper graph by copying it into each engine's graph.
  auto copy_into = [&](CypherEngine& e) {
    auto r = e.Execute(
        "CREATE (n1:Researcher {name: 'Nils'}), (n2:Publication {acmid: "
        "220}), (n3:Publication {acmid: 190}), (n4:Publication {acmid: "
        "235}), (n5:Publication {acmid: 240}), (n6:Researcher {name: "
        "'Elin'}), (n7:Student {name: 'Sten'}), (n8:Student {name: "
        "'Linda'}), (n9:Publication {acmid: 269}), (n10:Researcher {name: "
        "'Thor'}), (n1)-[:AUTHORS]->(n2), (n2)-[:CITES]->(n3), "
        "(n4)-[:CITES]->(n2), (n5)-[:CITES]->(n2), (n6)-[:AUTHORS]->(n5), "
        "(n6)-[:SUPERVISES]->(n7), (n6)-[:SUPERVISES]->(n8), "
        "(n10)-[:SUPERVISES]->(n7), (n9)-[:CITES]->(n4), "
        "(n6)-[:AUTHORS]->(n9), (n9)-[:CITES]->(n5)");
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  };
  copy_into(interp_engine);
  copy_into(volcano_engine);

  auto a = interp_engine.Execute(q);
  auto b = volcano_engine.Execute(q);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_TRUE(a->table.SameBag(b->table))
      << "interpreter:\n" << a->table.ToString() << "volcano:\n"
      << b->table.ToString();
  EXPECT_EQ(a->table.NumRows(), 2u);
}

TEST(Engine, SetRemoveDelete) {
  CypherEngine engine;
  ASSERT_TRUE(engine.Execute("CREATE (:X {v: 1}), (:X {v: 2})").ok());
  auto set = engine.Execute("MATCH (n:X) SET n.w = n.v * 10, n:Tagged");
  ASSERT_TRUE(set.ok()) << set.status().ToString();
  EXPECT_EQ(set->stats.properties_set, 2);
  EXPECT_EQ(set->stats.labels_added, 2);

  auto check = engine.Execute(
      "MATCH (n:Tagged) RETURN n.w ORDER BY n.w");
  ASSERT_TRUE(check.ok());
  ASSERT_EQ(check->table.NumRows(), 2u);
  EXPECT_EQ(check->table.rows()[0][0].AsInt(), 10);
  EXPECT_EQ(check->table.rows()[1][0].AsInt(), 20);

  auto remove = engine.Execute("MATCH (n:X) REMOVE n.v, n:Tagged");
  ASSERT_TRUE(remove.ok());
  EXPECT_EQ(remove->stats.labels_removed, 2);
  auto gone = engine.Execute("MATCH (n:Tagged) RETURN n");
  ASSERT_TRUE(gone.ok());
  EXPECT_EQ(gone->table.NumRows(), 0u);

  auto del = engine.Execute("MATCH (n:X) DELETE n");
  ASSERT_TRUE(del.ok());
  EXPECT_EQ(del->stats.nodes_deleted, 2);
  EXPECT_EQ(engine.graph().NumNodes(), 0u);
}

TEST(Engine, DeleteWithRelationshipsRequiresDetach) {
  CypherEngine engine;
  ASSERT_TRUE(engine.Execute("CREATE (a:A)-[:T]->(b:B)").ok());
  auto bad = engine.Execute("MATCH (a:A) DELETE a");
  EXPECT_FALSE(bad.ok());
  auto good = engine.Execute("MATCH (a:A) DETACH DELETE a");
  ASSERT_TRUE(good.ok()) << good.status().ToString();
  EXPECT_EQ(good->stats.nodes_deleted, 1);
  EXPECT_EQ(good->stats.rels_deleted, 1);
}

TEST(Engine, MergeMatchesOrCreates) {
  CypherEngine engine;
  auto first = engine.Execute(
      "MERGE (n:City {name: 'Oslo'}) ON CREATE SET n.created = true "
      "ON MATCH SET n.matched = true RETURN n.created, n.matched");
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first->stats.nodes_created, 1);
  EXPECT_TRUE(first->table.rows()[0][0].AsBool());
  EXPECT_TRUE(first->table.rows()[0][1].is_null());

  auto second = engine.Execute(
      "MERGE (n:City {name: 'Oslo'}) ON CREATE SET n.created = true "
      "ON MATCH SET n.matched = true RETURN n.created, n.matched");
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->stats.nodes_created, 0);
  EXPECT_TRUE(second->table.rows()[0][1].AsBool());
  EXPECT_EQ(engine.graph().NumNodes(), 1u);
}

TEST(Engine, MergeRelationship) {
  CypherEngine engine;
  ASSERT_TRUE(engine.Execute("CREATE (:P {id: 1}), (:P {id: 2})").ok());
  const char* q =
      "MATCH (a:P {id: 1}), (b:P {id: 2}) MERGE (a)-[r:LINKED]->(b) "
      "RETURN r";
  auto first = engine.Execute(q);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first->stats.rels_created, 1);
  auto second = engine.Execute(q);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->stats.rels_created, 0);
  EXPECT_EQ(engine.graph().NumRels(), 1u);
}

TEST(Engine, ParametersAndInjectionSafety) {
  CypherEngine engine;
  ASSERT_TRUE(
      engine.Execute("CREATE (:U {name: 'alice'}), (:U {name: 'bob'})").ok());
  ValueMap params;
  params["who"] = Value::String("alice");
  auto r = engine.Execute("MATCH (u:U {name: $who}) RETURN u.name", params);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->table.NumRows(), 1u);
  EXPECT_EQ(r->table.rows()[0][0].AsString(), "alice");
  // A malicious parameter value stays a value (no reparsing).
  params["who"] = Value::String("' OR 1=1 //");
  auto r2 = engine.Execute("MATCH (u:U {name: $who}) RETURN u.name", params);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->table.NumRows(), 0u);
  // Missing parameter errors cleanly.
  auto r3 = engine.Execute("MATCH (u:U {name: $nope}) RETURN u");
  EXPECT_FALSE(r3.ok());
}

TEST(Engine, ExplainShowsVolcanoOperators) {
  CypherEngine engine;
  ASSERT_TRUE(engine.Execute("CREATE (:A)-[:T]->(:B)").ok());
  auto plan = engine.Explain(
      "MATCH (a:A)-[r:T]->(b:B) WHERE a.x = 1 RETURN a, b");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_NE(plan->find("NodeByLabelScan"), std::string::npos) << *plan;
  EXPECT_NE(plan->find("Expand"), std::string::npos) << *plan;
  EXPECT_NE(plan->find("Projection"), std::string::npos) << *plan;
}

TEST(Engine, TemporalEndToEnd) {
  CypherEngine engine;
  auto r = engine.Execute(
      "RETURN date('2018-06-10') + duration('P1M') AS d, "
      "datetime('2018-06-10T14:00:00Z').epochSeconds AS es, "
      "duration('PT90M').minutes AS mins");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->table.rows()[0][0].AsDate().ToString(), "2018-07-10");
  EXPECT_EQ(r->table.rows()[0][1].AsInt(), 1528639200);
  EXPECT_EQ(r->table.rows()[0][2].AsInt(), 90);
}

TEST(Engine, TemporalPropertiesRoundTrip) {
  CypherEngine engine;
  ASSERT_TRUE(engine
                  .Execute("CREATE (:Event {at: datetime("
                           "'2018-06-10T09:30:00+02:00')})")
                  .ok());
  auto r = engine.Execute(
      "MATCH (e:Event) RETURN e.at.year, e.at.hour, e.at.offsetSeconds");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->table.rows()[0][0].AsInt(), 2018);
  EXPECT_EQ(r->table.rows()[0][1].AsInt(), 9);
  EXPECT_EQ(r->table.rows()[0][2].AsInt(), 7200);
}

TEST(Engine, MultiGraphExample61) {
  // Example 6.1: find friend-sharing pairs in soc_net, project a new
  // `friends` graph, then compose with the register graph to filter pairs
  // living in the same city.
  CypherEngine engine;

  // soc_net: four people; p0-p1 share friend p2; p0-p3 share no friend.
  auto soc = std::make_shared<PropertyGraph>();
  NodeId p0 = soc->CreateNode({"Person"}, {{"name", Value::String("p0")}});
  NodeId p1 = soc->CreateNode({"Person"}, {{"name", Value::String("p1")}});
  NodeId p2 = soc->CreateNode({"Person"}, {{"name", Value::String("p2")}});
  NodeId p3 = soc->CreateNode({"Person"}, {{"name", Value::String("p3")}});
  soc->CreateRelationship(p0, p2, "FRIEND", {{"since", Value::Int(2010)}})
      .value();
  soc->CreateRelationship(p1, p2, "FRIEND", {{"since", Value::Int(2011)}})
      .value();
  soc->CreateRelationship(p0, p3, "FRIEND", {{"since", Value::Int(2000)}})
      .value();
  engine.RegisterUrl("hdfs://cluster/soc_network", soc);

  // register: p0 and p1 live in the same city.
  auto reg = std::make_shared<PropertyGraph>();
  NodeId q0 = reg->CreateNode({"Person"}, {{"name", Value::String("p0")}});
  NodeId q1 = reg->CreateNode({"Person"}, {{"name", Value::String("p1")}});
  NodeId city = reg->CreateNode({"City"}, {{"name", Value::String("Oslo")}});
  reg->CreateRelationship(q0, city, "IN").value();
  reg->CreateRelationship(q1, city, "IN").value();
  engine.RegisterUrl("bolt://cluster/citizens", reg);

  ValueMap params;
  params["duration"] = Value::Int(5);
  auto first = engine.Execute(
      "FROM GRAPH soc_net AT \"hdfs://cluster/soc_network\" "
      "MATCH (a)-[r1:FRIEND]-()-[r2:FRIEND]-(b) "
      "WHERE abs(r2.since - r1.since) < $duration AND a.name < b.name "
      "WITH DISTINCT a, b "
      "RETURN GRAPH friends OF (a)-[:SHARE_FRIEND]->(b)",
      params);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_EQ(first->graphs.size(), 1u);
  GraphPtr friends = first->graphs[0].second;
  EXPECT_EQ(friends->NumNodes(), 2u);  // p0, p1
  EXPECT_EQ(friends->NumRels(), 1u);   // SHARE_FRIEND

  // Composition: the projected graph is addressable by name. Node
  // identity does not carry across graphs, so the composed query joins
  // through the `name` key.
  auto second = engine.Execute(
      "QUERY GRAPH friends "
      "MATCH (a)-[:SHARE_FRIEND]-(b) "
      "WITH a.name AS an, b.name AS bn "
      "FROM GRAPH register AT \"bolt://cluster/citizens\" "
      "MATCH (a2 {name: an})-[:IN]->(c:City)<-[:IN]-(b2 {name: bn}) "
      "RETURN an, bn, c.name AS city");
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  ASSERT_EQ(second->table.NumRows(), 2u);  // (p0,p1) and (p1,p0)
}

TEST(Engine, MorphismOptionIsConfigurable) {
  EngineOptions opts;
  opts.morphism = Morphism::kHomomorphism;
  opts.max_var_length = 4;
  CypherEngine engine(opts);
  ASSERT_TRUE(engine.Execute("CREATE (a:N)-[:T]->(a)").ok());
  auto r = engine.Execute("MATCH (x)-[*1..3]->(x) RETURN count(*) AS c");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->table.rows()[0][0].AsInt(), 3);  // loop 1, 2 or 3 times
  EngineOptions iso;
  CypherEngine engine2(iso);
  ASSERT_TRUE(engine2.Execute("CREATE (a:N)-[:T]->(a)").ok());
  auto r2 = engine2.Execute("MATCH (x)-[*1..3]->(x) RETURN count(*) AS c");
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->table.rows()[0][0].AsInt(), 1);
}

TEST(Engine, ErrorsCarryCategories) {
  CypherEngine engine;
  EXPECT_EQ(engine.Execute("MATCH (a RETURN a").status().code(),
            StatusCode::kSyntaxError);
  EXPECT_EQ(engine.Execute("MATCH (a) RETURN b").status().code(),
            StatusCode::kSemanticError);
  // Note `1 + 'x'` is legal Cypher (string concatenation); a boolean
  // operand is the type error.
  EXPECT_EQ(engine.Execute("RETURN true + 1").status().code(),
            StatusCode::kTypeError);
  EXPECT_EQ(engine.Execute("RETURN 1 / 0").status().code(),
            StatusCode::kEvaluationError);
}

TEST(Engine, UnionDistinctAndAll) {
  CypherEngine engine;
  ASSERT_TRUE(engine.Execute("CREATE (:A {v: 1}), (:B {v: 1})").ok());
  auto all = engine.Execute(
      "MATCH (a:A) RETURN a.v AS v UNION ALL MATCH (b:B) RETURN b.v AS v");
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->table.NumRows(), 2u);
  auto dedup = engine.Execute(
      "MATCH (a:A) RETURN a.v AS v UNION MATCH (b:B) RETURN b.v AS v");
  ASSERT_TRUE(dedup.ok());
  EXPECT_EQ(dedup->table.NumRows(), 1u);
}

TEST(Engine, RandIsDeterministicPerSeed) {
  EngineOptions opts;
  opts.rand_seed = 42;
  CypherEngine a(opts);
  CypherEngine b(opts);
  auto ra = a.Execute("RETURN rand() AS r");
  auto rb = b.Execute("RETURN rand() AS r");
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  EXPECT_DOUBLE_EQ(ra->table.rows()[0][0].AsFloat(),
                   rb->table.rows()[0][0].AsFloat());
}

// ---- Environment override parsing ------------------------------------------
// GQLITE_BATCH_SIZE / GQLITE_THREADS drive whole CI legs; a garbage value
// silently clamped would mean the leg stops testing what it claims to.
// The engine must reject garbage with a clear error naming the variable.

/// Sets (or, with nullptr, unsets) an environment variable for the
/// duration of one test and restores the previous value after (the rest
/// of the suite must not see the garbage).
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = getenv(name);
    if (old != nullptr) saved_ = old;
    if (value != nullptr) {
      setenv(name, value, /*overwrite=*/1);
    } else {
      unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (saved_.has_value()) {
      setenv(name_, saved_->c_str(), 1);
    } else {
      unsetenv(name_);
    }
  }

 private:
  const char* name_;
  std::optional<std::string> saved_;
};

TEST(EngineEnv, GarbageBatchSizeIsAClearErrorNotAClamp) {
  // (An EMPTY value is treated as unset, per the usual env-var custom.)
  for (const char* garbage :
       {"abc", "12abc", " 8", "-3", "0", "99999999999999999999999",
        "1048577" /* above the 2^20 cap */}) {
    ScopedEnv env("GQLITE_BATCH_SIZE", garbage);
    CypherEngine engine;
    auto r = engine.Execute("RETURN 1 AS one");
    ASSERT_FALSE(r.ok()) << "accepted GQLITE_BATCH_SIZE=" << garbage;
    EXPECT_NE(r.status().ToString().find("GQLITE_BATCH_SIZE"),
              std::string::npos)
        << r.status().ToString();
  }
}

TEST(EngineEnv, GarbageThreadsIsAClearErrorNotAClamp) {
  for (const char* garbage :
       {"four", "2x", "-1", "0", "12345678901234567890", "257"}) {
    ScopedEnv env("GQLITE_THREADS", garbage);
    CypherEngine engine;
    auto r = engine.Execute("RETURN 1 AS one");
    ASSERT_FALSE(r.ok()) << "accepted GQLITE_THREADS=" << garbage;
    EXPECT_NE(r.status().ToString().find("GQLITE_THREADS"),
              std::string::npos)
        << r.status().ToString();
  }
}

TEST(EngineEnv, ValidOverridesApply) {
  {
    ScopedEnv env("GQLITE_BATCH_SIZE", "7");
    CypherEngine engine;
    EXPECT_EQ(engine.options().batch_size, 7u);
    EXPECT_TRUE(engine.Execute("RETURN 1 AS one").ok());
  }
  {
    ScopedEnv env("GQLITE_THREADS", "2");
    EngineOptions opts;
    opts.num_threads = 1;  // the override wins over the programmatic value
    CypherEngine engine(opts);
    EXPECT_EQ(engine.options().num_threads, 2u);
    EXPECT_TRUE(engine.Execute("RETURN 1 AS one").ok());
  }
}

TEST(EngineEnv, GarbageSurfacesFromPrepareToo) {
  ScopedEnv env("GQLITE_THREADS", "lots");
  CypherEngine engine;
  auto prepared = engine.Prepare("MATCH (n) RETURN n");
  EXPECT_FALSE(prepared.ok());
  // set_options re-parses: fixing the environment mid-life is possible.
  EXPECT_FALSE(engine.Execute("RETURN 1 AS one").ok());
}

TEST(EngineEnv, ProgrammaticValuesStillClampQuietly) {
  // Only the ENVIRONMENT is held to strict parsing; EngineOptions set in
  // code keep the forgiving clamp (0 means "default", not an error).
  // CI legs export these variables suite-wide; this test is about their
  // absence.
  ScopedEnv no_batch("GQLITE_BATCH_SIZE", nullptr);
  ScopedEnv no_threads("GQLITE_THREADS", nullptr);
  EngineOptions opts;
  opts.batch_size = 0;
  opts.num_threads = 0;
  CypherEngine engine(opts);
  EXPECT_EQ(engine.options().batch_size, 1u);
  EXPECT_EQ(engine.options().num_threads, 1u);
  EXPECT_TRUE(engine.Execute("RETURN 1 AS one").ok());
}

}  // namespace
}  // namespace gqlite
