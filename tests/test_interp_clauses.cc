// Clause-level semantics tests: ⟦C⟧G applied to explicit driving tables —
// exercising the table-to-table functions of Figure 7 directly through
// Interpreter::ExecuteClause, including the literal Example 4.6 setup.

#include <gtest/gtest.h>

#include "src/frontend/parser.h"
#include "src/interp/interpreter.h"
#include "src/workload/paper_graphs.h"

namespace gqlite {
namespace {

class ClauseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fig4_ = workload::MakePaperFigure4Graph();
    catalog_.RegisterGraph(GraphCatalog::kDefaultGraphName, fig4_.graph);
  }

  /// Applies the first clause of "<<clause>> RETURN 1" to `input`.
  Result<Table> Apply(const std::string& clause_text, Table input) {
    GQL_ASSIGN_OR_RETURN(ast::Query q,
                         ParseQuery(clause_text + " RETURN 1"));
    Interpreter::Options opts;
    Interpreter interp(&catalog_, fig4_.graph, &params_, opts, &rand_);
    return interp.ExecuteClause(*q.parts[0].clauses[0], std::move(input));
  }

  Value N(int i) { return Value::Node(fig4_.n[i]); }

  workload::PaperFigure4 fig4_;
  GraphCatalog catalog_;
  ValueMap params_;
  uint64_t rand_ = 1;
};

TEST_F(ClauseTest, Example46LiteralDrivingTable) {
  // T = {(x : n1); (x : n3)} — exactly the table of Example 4.6.
  Table t({"x"});
  t.AddRow({N(1)});
  t.AddRow({N(3)});
  auto r = Apply("MATCH (x)-[:KNOWS*]->(y)", std::move(t));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  Table expect({"x", "y"});
  expect.AddRow({N(1), N(2)});
  expect.AddRow({N(1), N(3)});
  expect.AddRow({N(1), N(4)});
  expect.AddRow({N(3), N(4)});
  EXPECT_TRUE(r->SameBag(expect)) << r->ToString();
}

TEST_F(ClauseTest, MatchOnUnitTable) {
  // ⟦MATCH (x:Teacher)⟧G(T()) — evaluation always starts from the table
  // with one empty tuple.
  auto r = Apply("MATCH (x:Teacher)", Table::Unit());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->NumRows(), 3u);
  EXPECT_EQ(r->fields(), std::vector<std::string>{"x"});
}

TEST_F(ClauseTest, MatchOnEmptyTableYieldsEmpty) {
  // A table with no rows drives no matching at all (bag union over u ∈ T).
  Table empty({"x"});
  auto r = Apply("MATCH (x)-[:KNOWS]->(y)", std::move(empty));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->NumRows(), 0u);
  EXPECT_EQ(r->fields(), (std::vector<std::string>{"x", "y"}));
}

TEST_F(ClauseTest, MatchPreservesInputMultiplicity) {
  // Bag semantics: a duplicated input row duplicates its matches.
  Table t({"x"});
  t.AddRow({N(1)});
  t.AddRow({N(1)});
  auto r = Apply("MATCH (x)-[:KNOWS]->(y)", std::move(t));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->NumRows(), 2u);
}

TEST_F(ClauseTest, OptionalMatchPadsPerRow) {
  // n4 has no outgoing KNOWS: its row pads with null; others bind.
  Table t({"x"});
  t.AddRow({N(3)});
  t.AddRow({N(4)});
  auto r = Apply("OPTIONAL MATCH (x)-[:KNOWS]->(y)", std::move(t));
  ASSERT_TRUE(r.ok());
  Table expect({"x", "y"});
  expect.AddRow({N(3), N(4)});
  expect.AddRow({N(4), Value::Null()});
  EXPECT_TRUE(r->SameBag(expect)) << r->ToString();
}

TEST_F(ClauseTest, OptionalMatchWhereInsideOptional) {
  // Figure 7: the WHERE participates in the per-row match attempt.
  Table t({"x"});
  t.AddRow({N(1)});
  auto r = Apply("OPTIONAL MATCH (x)-[:KNOWS]->(y) WHERE y:Teacher",
                 std::move(t));
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->NumRows(), 1u);
  EXPECT_TRUE(r->rows()[0][1].is_null());  // n2 is a Student → padded
}

TEST_F(ClauseTest, WhereKeepsOnlyTrue) {
  Table t({"v"});
  t.AddRow({Value::Int(1)});
  t.AddRow({Value::Int(5)});
  t.AddRow({Value::Null()});
  auto r = Apply("WITH v WHERE v > 2", std::move(t));
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->NumRows(), 1u);
  EXPECT_EQ(r->rows()[0][0].AsInt(), 5);
}

TEST_F(ClauseTest, UnwindExtendsEachRow) {
  Table t({"xs"});
  t.AddRow({Value::MakeList({Value::Int(1), Value::Int(2)})});
  t.AddRow({Value::EmptyList()});
  t.AddRow({Value::Int(9)});   // non-list → single row (Figure 7)
  t.AddRow({Value::Null()});   // paper rule: one null row
  auto r = Apply("UNWIND xs AS x", std::move(t));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->NumRows(), 4u);  // 2 + 0 + 1 + 1
  EXPECT_EQ(r->fields(), (std::vector<std::string>{"xs", "x"}));
}

TEST_F(ClauseTest, WithProjectsAndDropsColumns) {
  // §3: "the variable s is no longer in scope after line 3".
  Table t({"r", "s"});
  t.AddRow({N(1), N(2)});
  auto out = Apply("WITH r", std::move(t));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->fields(), std::vector<std::string>{"r"});
}

TEST_F(ClauseTest, MatchAddsNoFieldsWhenAllBound) {
  // All pattern variables already bound: MATCH acts as a semi-join filter.
  Table t({"x", "y"});
  t.AddRow({N(1), N(2)});   // n1 KNOWS n2: kept
  t.AddRow({N(1), N(3)});   // no direct edge: dropped
  auto r = Apply("MATCH (x)-[:KNOWS]->(y)", std::move(t));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->fields(), (std::vector<std::string>{"x", "y"}));
  ASSERT_EQ(r->NumRows(), 1u);
  EXPECT_TRUE(ValueEquivalent(r->rows()[0][1], N(2)));
}

}  // namespace
}  // namespace gqlite
