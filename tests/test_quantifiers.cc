// Tests for list-predicate quantifiers (all/any/none/single) and reduce —
// extensions in the §2 "expression language includes powerful features"
// family — including their SQL-style 3VL behaviour and use in queries.

#include <gtest/gtest.h>

#include "src/core/engine.h"
#include "src/eval/evaluator.h"
#include "src/frontend/ast_printer.h"
#include "src/frontend/parser.h"

namespace gqlite {
namespace {

Value Eval(const std::string& text) {
  auto expr = ParseExpression(text);
  EXPECT_TRUE(expr.ok()) << text << ": " << expr.status().ToString();
  if (!expr.ok()) return Value::Null();
  MapEnvironment env;
  EvalContext ctx;
  static ValueMap no_params;
  ctx.parameters = &no_params;
  auto r = EvaluateExpr(**expr, env, ctx);
  EXPECT_TRUE(r.ok()) << text << ": " << r.status().ToString();
  return r.ok() ? *r : Value::Null();
}

TEST(Quantifiers, All) {
  EXPECT_TRUE(Eval("all(x IN [1, 2, 3] WHERE x > 0)").AsBool());
  EXPECT_FALSE(Eval("all(x IN [1, -2, 3] WHERE x > 0)").AsBool());
  EXPECT_TRUE(Eval("all(x IN [] WHERE x > 0)").AsBool());  // vacuous
  // 3VL: an unknown element makes the verdict unknown unless a false
  // decides it.
  EXPECT_TRUE(Eval("all(x IN [1, null] WHERE x > 0)").is_null());
  EXPECT_FALSE(Eval("all(x IN [-1, null] WHERE x > 0)").AsBool());
}

TEST(Quantifiers, Any) {
  EXPECT_TRUE(Eval("any(x IN [0, 1] WHERE x > 0)").AsBool());
  EXPECT_FALSE(Eval("any(x IN [0, -1] WHERE x > 0)").AsBool());
  EXPECT_FALSE(Eval("any(x IN [] WHERE x > 0)").AsBool());
  EXPECT_TRUE(Eval("any(x IN [null, 1] WHERE x > 0)").AsBool());
  EXPECT_TRUE(Eval("any(x IN [null, 0] WHERE x > 0)").is_null());
}

TEST(Quantifiers, NoneAndSingle) {
  EXPECT_TRUE(Eval("none(x IN [0, -1] WHERE x > 0)").AsBool());
  EXPECT_FALSE(Eval("none(x IN [0, 1] WHERE x > 0)").AsBool());
  EXPECT_TRUE(Eval("single(x IN [0, 1, 0] WHERE x > 0)").AsBool());
  EXPECT_FALSE(Eval("single(x IN [1, 1] WHERE x > 0)").AsBool());
  EXPECT_FALSE(Eval("single(x IN [] WHERE x > 0)").AsBool());
  EXPECT_TRUE(Eval("single(x IN [1, null] WHERE x > 0)").is_null());
  EXPECT_FALSE(Eval("single(x IN [1, 1, null] WHERE x > 0)").AsBool());
}

TEST(Quantifiers, NullList) {
  EXPECT_TRUE(Eval("all(x IN null WHERE x > 0)").is_null());
  EXPECT_TRUE(Eval("any(x IN null WHERE x > 0)").is_null());
}

TEST(Reduce, Folds) {
  EXPECT_EQ(Eval("reduce(acc = 0, x IN [1, 2, 3] | acc + x)").AsInt(), 6);
  EXPECT_EQ(Eval("reduce(acc = 1, x IN [2, 3, 4] | acc * x)").AsInt(), 24);
  EXPECT_EQ(Eval("reduce(s = '', w IN ['a', 'b'] | s + w)").AsString(), "ab");
  EXPECT_EQ(Eval("reduce(acc = 42, x IN [] | acc + x)").AsInt(), 42);
  EXPECT_TRUE(Eval("reduce(acc = 0, x IN null | acc + x)").is_null());
}

TEST(Reduce, AccumulatorVisibleInBody) {
  // Running maximum.
  EXPECT_EQ(Eval("reduce(m = -1, x IN [3, 9, 2] | "
                 "CASE WHEN x > m THEN x ELSE m END)")
                .AsInt(),
            9);
}

TEST(QuantifiersInQueries, WhereClause) {
  CypherEngine engine;
  ASSERT_TRUE(engine
                  .Execute("CREATE ({vs: [1, 2, 3]}), ({vs: [1, -2]}), "
                           "({vs: []})")
                  .ok());
  auto r = engine.Execute(
      "MATCH (n) WHERE all(v IN n.vs WHERE v > 0) RETURN count(*) AS c");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->table.rows()[0][0].AsInt(), 2);  // [1,2,3] and []
  auto r2 = engine.Execute(
      "MATCH (n) WHERE any(v IN n.vs WHERE v < 0) RETURN count(*) AS c");
  EXPECT_EQ(r2->table.rows()[0][0].AsInt(), 1);
}

TEST(QuantifiersInQueries, OverVarLengthRelationships) {
  CypherEngine engine;
  ASSERT_TRUE(engine
                  .Execute("CREATE (:S)-[:T {w: 1}]->()-[:T {w: 2}]->(:E), "
                           "(:S)-[:T {w: 1}]->()-[:T {w: 1}]->(:E)")
                  .ok());
  auto r = engine.Execute(
      "MATCH (:S)-[rs:T*2]->(:E) "
      "WHERE all(r IN rs WHERE r.w = 1) RETURN count(*) AS c");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->table.rows()[0][0].AsInt(), 1);
}

TEST(QuantifiersInQueries, ReduceOverCollect) {
  CypherEngine engine;
  ASSERT_TRUE(engine.Execute("UNWIND [1, 2, 3, 4] AS x CREATE ({v: x})")
                  .ok());
  auto r = engine.Execute(
      "MATCH (n) WITH collect(n.v) AS vs "
      "RETURN reduce(acc = 0, v IN vs | acc + v * v) AS sumsq");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->table.rows()[0][0].AsInt(), 30);
}

TEST(QuantifiersSemantics, ScopingChecked) {
  CypherEngine engine;
  // The iteration variable is not visible outside.
  auto bad = engine.Execute("RETURN all(x IN [1] WHERE x > 0) AND x > 0");
  EXPECT_FALSE(bad.ok());
  // The list expression cannot use the iteration variable.
  auto bad2 = engine.Execute("RETURN any(x IN [x] WHERE x > 0)");
  EXPECT_FALSE(bad2.ok());
}

TEST(QuantifiersSyntax, RoundTrip) {
  auto q = ParseExpression("all(x IN list WHERE (x > 0))");
  ASSERT_TRUE(q.ok());
  // A plain function call named all(...) without `IN` stays a call.
  auto fn = ParseExpression("all(1, 2)");
  ASSERT_TRUE(fn.ok());
  EXPECT_EQ((*fn)->kind, ast::Expr::Kind::kFunctionCall);
  auto red = ParseExpression("reduce(acc = 0, x IN xs | acc + x)");
  ASSERT_TRUE(red.ok());
  EXPECT_EQ((*red)->kind, ast::Expr::Kind::kReduce);
}

}  // namespace
}  // namespace gqlite
