// Session / transaction semantics: snapshot isolation for readers,
// single-writer conflicts, rollback, default-graph pinning, and
// plan-cache invalidation visibility across sessions.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/core/engine.h"
#include "src/core/session.h"

namespace gqlite {
namespace {

int64_t CountNodes(Session* s) {
  auto r = s->Execute("MATCH (n) RETURN count(n) AS c");
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r->table.rows()[0][0].AsInt();
}

int64_t CountNodes(CypherEngine* engine) {
  auto r = engine->Execute("MATCH (n) RETURN count(n) AS c");
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r->table.rows()[0][0].AsInt();
}

TEST(Session, AutoCommitMatchesEngine) {
  CypherEngine engine;
  auto session = engine.CreateSession();
  ASSERT_TRUE(session->Execute("CREATE (:A {x: 1})").ok());
  EXPECT_FALSE(session->in_transaction());
  EXPECT_EQ(session->graph(), nullptr);
  EXPECT_EQ(CountNodes(&engine), 1);
}

TEST(Session, ReadTransactionPinsSnapshot) {
  CypherEngine engine;
  ASSERT_TRUE(engine.Execute("CREATE (:A), (:A)").ok());

  auto reader = engine.CreateSession();
  ASSERT_TRUE(reader->Begin(TxnMode::kRead).ok());
  EXPECT_EQ(CountNodes(reader.get()), 2);

  // A commit through the engine (auto-commit writer) must not leak into
  // the pinned snapshot.
  ASSERT_TRUE(engine.Execute("CREATE (:A)").ok());
  EXPECT_EQ(CountNodes(reader.get()), 2);
  EXPECT_EQ(CountNodes(&engine), 3);

  // After the transaction closes, the session sees the new state.
  ASSERT_TRUE(reader->Commit().ok());
  EXPECT_EQ(CountNodes(reader.get()), 3);
}

TEST(Session, SnapshotSeesNoneOfConcurrentWriterChanges) {
  CypherEngine engine;
  ASSERT_TRUE(engine.Execute("CREATE (:A {x: 1})").ok());

  auto reader = engine.CreateSession();
  auto writer = engine.CreateSession();
  ASSERT_TRUE(reader->Begin(TxnMode::kRead).ok());
  ASSERT_TRUE(writer->Begin(TxnMode::kWrite).ok());

  // The writer mutates labels, properties, and topology; the reader's
  // snapshot must observe none of it, even before the writer commits.
  ASSERT_TRUE(writer->Execute("MATCH (a:A) SET a.x = 99").ok());
  ASSERT_TRUE(writer->Execute("MATCH (a:A) CREATE (a)-[:R]->(:B)").ok());

  auto rx = reader->Execute("MATCH (a:A) RETURN a.x AS x");
  ASSERT_TRUE(rx.ok());
  EXPECT_EQ(rx->table.rows()[0][0].AsInt(), 1);
  EXPECT_EQ(CountNodes(reader.get()), 1);

  // The writer sees its own uncommitted writes.
  auto wx = writer->Execute("MATCH (a:A) RETURN a.x AS x");
  ASSERT_TRUE(wx.ok());
  EXPECT_EQ(wx->table.rows()[0][0].AsInt(), 99);

  ASSERT_TRUE(writer->Commit().ok());
  // Still pinned: the commit happened after the reader's Begin.
  EXPECT_EQ(CountNodes(reader.get()), 1);
  ASSERT_TRUE(reader->Commit().ok());
  EXPECT_EQ(CountNodes(reader.get()), 2);
}

TEST(Session, WriteWriteConflictSurfaces) {
  CypherEngine engine;
  auto s1 = engine.CreateSession();
  auto s2 = engine.CreateSession();
  ASSERT_TRUE(s1->Begin(TxnMode::kWrite).ok());

  Status conflict = s2->Begin(TxnMode::kWrite);
  EXPECT_EQ(conflict.code(), StatusCode::kConflict) << conflict.ToString();
  EXPECT_FALSE(s2->in_transaction());

  // Releasing the slot (either way) lets the other writer in.
  ASSERT_TRUE(s1->Rollback().ok());
  EXPECT_TRUE(s2->Begin(TxnMode::kWrite).ok());
  EXPECT_TRUE(s2->Commit().ok());
}

TEST(Session, UpdatingStatementRejectedInReadTransaction) {
  CypherEngine engine;
  auto session = engine.CreateSession();
  ASSERT_TRUE(session->Begin(TxnMode::kRead).ok());
  auto r = session->Execute("CREATE (:A)");
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  // The failed statement does not poison the transaction.
  EXPECT_EQ(CountNodes(session.get()), 0);
  ASSERT_TRUE(session->Commit().ok());
  EXPECT_EQ(CountNodes(&engine), 0);
}

TEST(Session, RollbackRestoresPreBeginState) {
  CypherEngine engine;
  ASSERT_TRUE(engine.Execute("CREATE (:A {x: 1})").ok());

  auto session = engine.CreateSession();
  ASSERT_TRUE(session->Begin(TxnMode::kWrite).ok());
  ASSERT_TRUE(session->Execute("MATCH (a:A) SET a.x = 2").ok());
  ASSERT_TRUE(session->Execute("CREATE (:B), (:C)").ok());
  EXPECT_EQ(CountNodes(session.get()), 3);
  ASSERT_TRUE(session->Rollback().ok());

  EXPECT_EQ(CountNodes(&engine), 1);
  auto r = engine.Execute("MATCH (a:A) RETURN a.x AS x");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->table.rows()[0][0].AsInt(), 1);
}

TEST(Session, DestructorRollsBackOpenWrite) {
  CypherEngine engine;
  {
    auto session = engine.CreateSession();
    ASSERT_TRUE(session->Begin(TxnMode::kWrite).ok());
    ASSERT_TRUE(session->Execute("CREATE (:A)").ok());
    // Session destroyed with the transaction still open.
  }
  EXPECT_EQ(CountNodes(&engine), 0);
  // The writer slot was released: a fresh write transaction succeeds.
  auto s2 = engine.CreateSession();
  EXPECT_TRUE(s2->Begin(TxnMode::kWrite).ok());
  EXPECT_TRUE(s2->Commit().ok());
}

TEST(Session, DoubleBeginAndStrayCommitFail) {
  CypherEngine engine;
  auto session = engine.CreateSession();
  EXPECT_EQ(session->Commit().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(session->Rollback().code(), StatusCode::kInvalidArgument);
  ASSERT_TRUE(session->Begin(TxnMode::kRead).ok());
  EXPECT_EQ(session->Begin(TxnMode::kRead).code(),
            StatusCode::kInvalidArgument);
  ASSERT_TRUE(session->Commit().ok());
}

TEST(Session, ResultsOutliveSessionAndTransaction) {
  CypherEngine engine;
  ASSERT_TRUE(engine.Execute("CREATE (:A {name: 'keep'})").ok());
  Result<QueryResult> r = Status::InvalidArgument("not yet assigned");
  {
    auto session = engine.CreateSession();
    ASSERT_TRUE(session->Begin(TxnMode::kRead).ok());
    r = session->Execute("MATCH (a:A) RETURN a.name AS name");
    ASSERT_TRUE(session->Commit().ok());
  }
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->table.rows().size(), 1u);
  EXPECT_EQ(r->table.rows()[0][0].AsString(), "keep");
}

TEST(Session, PlanCacheInvalidationVisibleAcrossSessions) {
  EngineOptions opts;
  opts.plan_cache_capacity = 8;
  CypherEngine engine(opts);
  ASSERT_TRUE(engine.Execute("CREATE (:A)").ok());

  auto s1 = engine.CreateSession();
  auto s2 = engine.CreateSession();
  const std::string q = "MATCH (n:A) RETURN count(n) AS c";

  // Warm the cache through s1, hit it through s2.
  ASSERT_TRUE(s1->Execute(q).ok());
  ASSERT_TRUE(s2->Execute(q).ok());
  PlanCacheStats warm = engine.plan_cache_stats();
  EXPECT_GE(warm.hits, 1u);

  // A structural change through s1 must invalidate the cached plan for
  // s2's next execution — stale per-snapshot statistics are not reused.
  ASSERT_TRUE(s1->Execute("CREATE (:A), (:A)").ok());
  auto r = s2->Execute(q);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->table.rows()[0][0].AsInt(), 3);
  PlanCacheStats after = engine.plan_cache_stats();
  EXPECT_GT(after.invalidations + after.misses,
            warm.invalidations + warm.misses);
}

TEST(Session, DefaultGraphBindingPinnedAtBegin) {
  CypherEngine engine;
  ASSERT_TRUE(engine.Execute("CREATE (:Old)").ok());

  auto reader = engine.CreateSession();
  ASSERT_TRUE(reader->Begin(TxnMode::kRead).ok());
  EXPECT_EQ(CountNodes(reader.get()), 1);

  // Rebind the engine's default graph mid-transaction.
  auto replacement = std::make_shared<PropertyGraph>();
  engine.set_default_graph(replacement);
  ASSERT_TRUE(engine.Execute("CREATE (:New), (:New)").ok());

  // The open transaction stays bound to the graph it began on.
  auto r = reader->Execute("MATCH (n:Old) RETURN count(n) AS c");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->table.rows()[0][0].AsInt(), 1);
  EXPECT_EQ(CountNodes(reader.get()), 1);
  ASSERT_TRUE(reader->Commit().ok());

  // A fresh transaction binds to the replacement.
  ASSERT_TRUE(reader->Begin(TxnMode::kRead).ok());
  EXPECT_EQ(CountNodes(reader.get()), 2);
  ASSERT_TRUE(reader->Commit().ok());
}

TEST(Session, RandSubstreamsAreIndependentAndReproducible) {
  // Each session draws rand() from its own seeded substream (ISSUE 8
  // satellite, PR 7 follow-up): statements in one session never perturb
  // another session's sequence — or the engine-level stream — and a
  // session's sequence is reproducible from (engine seed, creation
  // order).
  auto draw = [](Session* s) {
    auto r = s->Execute("RETURN rand() AS r");
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r->table.rows()[0][0].AsFloat();
  };
  EngineOptions opts;
  opts.rand_seed = 42;
  CypherEngine a(opts);
  auto a1 = a.CreateSession();
  auto a2 = a.CreateSession();
  double a1_first = draw(a1.get());
  double a2_first = draw(a2.get());
  double a1_second = draw(a1.get());

  // Same engine seed, same creation order, but a2's statements
  // interleaved differently: per-session sequences must not change.
  CypherEngine b(opts);
  auto b1 = b.CreateSession();
  auto b2 = b.CreateSession();
  EXPECT_DOUBLE_EQ(draw(b2.get()), a2_first);
  EXPECT_DOUBLE_EQ(draw(b2.get()), draw(a2.get()));
  EXPECT_DOUBLE_EQ(draw(b1.get()), a1_first);
  EXPECT_DOUBLE_EQ(draw(b1.get()), a1_second);

  // Distinct substreams: the two sessions (and the engine-level stream)
  // do not replay one another.
  EXPECT_NE(a1_first, a2_first);
  CypherEngine c(opts);
  auto engine_first = c.Execute("RETURN rand() AS r");
  ASSERT_TRUE(engine_first.ok());
  EXPECT_NE(engine_first->table.rows()[0][0].AsFloat(), a1_first);

  // Session statements leave the engine-level stream untouched.
  CypherEngine d(opts);
  auto ds = d.CreateSession();
  (void)draw(ds.get());
  (void)draw(ds.get());
  auto after = d.Execute("RETURN rand() AS r");
  ASSERT_TRUE(after.ok());
  EXPECT_DOUBLE_EQ(after->table.rows()[0][0].AsFloat(),
                   engine_first->table.rows()[0][0].AsFloat());

  // The substream also feeds statements inside explicit transactions.
  CypherEngine e(opts);
  auto es = e.CreateSession();
  ASSERT_TRUE(es->Begin(TxnMode::kRead).ok());
  EXPECT_DOUBLE_EQ(draw(es.get()), a1_first);
  ASSERT_TRUE(es->Commit().ok());
}

TEST(Session, ReadTransactionPinsCatalogBindings) {
  // The snapshot-isolated view extends to FROM GRAPH resolution: the
  // name/URL bindings are captured at Begin, so a concurrent
  // RegisterGraph cannot rebind a name mid-transaction (statement 1 and
  // statement 2 of the same read transaction must see the same graph).
  CypherEngine engine;
  auto g1 = std::make_shared<PropertyGraph>();
  g1->CreateNode({"V"});
  engine.RegisterGraph("g", g1);

  auto reader = engine.CreateSession();
  ASSERT_TRUE(reader->Begin(TxnMode::kRead).ok());
  auto count = [&]() {
    auto r = reader->Execute("FROM GRAPH g MATCH (n) RETURN count(n) AS c");
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r->table.rows()[0][0].AsInt();
  };
  EXPECT_EQ(count(), 1);

  // Concurrent rebinding of the SAME name: invisible until Commit.
  auto g2 = std::make_shared<PropertyGraph>();
  g2->CreateNode({"V"});
  g2->CreateNode({"V"});
  engine.RegisterGraph("g", g2);
  EXPECT_EQ(count(), 1);

  // A name REGISTERED AFTER Begin is still reachable — pinning freezes
  // existing bindings, it does not hide new ones.
  auto g3 = std::make_shared<PropertyGraph>();
  g3->CreateNode({"W"});
  g3->CreateNode({"W"});
  g3->CreateNode({"W"});
  engine.RegisterGraph("late", g3);
  auto late = reader->Execute(
      "FROM GRAPH late MATCH (n) RETURN count(n) AS c");
  ASSERT_TRUE(late.ok()) << late.status().ToString();
  EXPECT_EQ(late->table.rows()[0][0].AsInt(), 3);

  ASSERT_TRUE(reader->Commit().ok());

  // Outside the transaction the rebinding is visible immediately.
  auto after = reader->Execute("FROM GRAPH g MATCH (n) RETURN count(n) AS c");
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(after->table.rows()[0][0].AsInt(), 2);
}

TEST(Session, WriteTransactionSurvivesDefaultGraphSwap) {
  CypherEngine engine;
  auto writer = engine.CreateSession();
  ASSERT_TRUE(writer->Begin(TxnMode::kWrite).ok());
  ASSERT_TRUE(writer->Execute("CREATE (:InTxn)").ok());

  // Swapping the default graph mid-write leaves the transaction bound
  // to the old head; its rollback must not clobber the new default.
  auto replacement = std::make_shared<PropertyGraph>();
  replacement->CreateNode();
  engine.set_default_graph(replacement);
  ASSERT_TRUE(writer->Rollback().ok());

  EXPECT_EQ(CountNodes(&engine), 1);
}

}  // namespace
}  // namespace gqlite
