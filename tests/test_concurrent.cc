// Concurrent differential harness (ROADMAP item 1): N reader threads,
// each pinning snapshot-isolated read transactions, run a fixed query
// mix BOTH through their session and through a serial interpreter-mode
// oracle engine bound to the very same snapshot — the two must agree
// bag-wise on every round while a writer thread keeps committing write
// transactions against the head. Also asserts the isolation invariant
// directly: every statement inside one read transaction observes the
// same counts, no matter what the writer commits meanwhile.
//
// The sanitizer CI legs reshape rather than skip this: under
// GQLITE_THREADS=4 (the TSan leg) every session engine execution also
// fans out over the shared worker pool, so the harness doubles as a
// lock-order exercise for pool + plan cache + catalog + txn mutexes.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "src/core/engine.h"
#include "src/core/session.h"

namespace gqlite {
namespace {

constexpr int kReaderThreads = 4;
constexpr int kReaderRounds = 4;
constexpr int kWriterCommits = 12;

// The read mix: aggregation, property projection, expansion, filter.
const char* const kReadQueries[] = {
    "MATCH (n) RETURN count(n) AS c",
    "MATCH (p:Person) RETURN p.id AS id, p.score AS s",
    "MATCH (a:Person)-[:KNOWS]->(b:Person) RETURN a.id AS a, b.id AS b",
    "MATCH (p:Person) WHERE p.score > 4 RETURN count(p) AS hi",
};

void SeedGraph(CypherEngine* engine) {
  for (int i = 0; i < 12; ++i) {
    std::string q = "CREATE (:Person {id: " + std::to_string(i) +
                    ", score: " + std::to_string(i % 9) + "})";
    ASSERT_TRUE(engine->Execute(q).ok());
  }
  auto r = engine->Execute(
      "MATCH (a:Person), (b:Person) WHERE b.id = a.id + 1 "
      "CREATE (a)-[:KNOWS]->(b)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
}

TEST(Concurrent, SnapshotReadersMatchSerialOracleUnderWriter) {
  CypherEngine engine;
  SeedGraph(&engine);

  std::vector<std::thread> readers;
  readers.reserve(kReaderThreads);
  for (int t = 0; t < kReaderThreads; ++t) {
    readers.emplace_back([&engine, t] {
      // One serial oracle per reader thread: interpreter mode, rebound
      // to the pinned snapshot each round. Frozen snapshots are safe to
      // share as a default graph (reads never mutate them).
      EngineOptions oracle_opts;
      oracle_opts.mode = ExecutionMode::kInterpreter;
      CypherEngine oracle(oracle_opts);

      auto session = engine.CreateSession();
      for (int round = 0; round < kReaderRounds; ++round) {
        ASSERT_TRUE(session->Begin(TxnMode::kRead).ok());
        GraphPtr snap = session->graph();
        ASSERT_NE(snap, nullptr);
        ASSERT_TRUE(snap->frozen());
        oracle.set_default_graph(snap);

        int64_t pinned_nodes = -1;
        for (const char* q : kReadQueries) {
          auto got = session->Execute(q);
          auto want = oracle.Execute(q);
          ASSERT_TRUE(got.ok()) << "reader " << t << ": " << q << ": "
                                << got.status().ToString();
          ASSERT_TRUE(want.ok()) << "oracle " << t << ": " << q << ": "
                                 << want.status().ToString();
          EXPECT_TRUE(want->table.SameBag(got->table))
              << "reader " << t << " round " << round << " diverges on \""
              << q << "\"\noracle:\n" << want->table.ToString()
              << "session:\n" << got->table.ToString();
        }
        // Isolation invariant: the pinned count never moves within the
        // transaction, however many commits land meanwhile.
        for (int probe = 0; probe < 3; ++probe) {
          auto c = session->Execute(kReadQueries[0]);
          ASSERT_TRUE(c.ok());
          int64_t n = c->table.rows()[0][0].AsInt();
          if (pinned_nodes < 0) pinned_nodes = n;
          EXPECT_EQ(n, pinned_nodes)
              << "reader " << t << " round " << round
              << ": count drifted inside a read transaction";
        }
        ASSERT_TRUE(session->Commit().ok());
      }
    });
  }

  // The writer keeps churning the head through explicit write
  // transactions: inserts, property updates, detach-deletes (the COW
  // paths for slot pages, label index postings, and adjacency).
  std::thread writer([&engine] {
    auto session = engine.CreateSession();
    for (int i = 0; i < kWriterCommits; ++i) {
      // The only writer in this test: the slot is always free.
      ASSERT_TRUE(session->Begin(TxnMode::kWrite).ok());
      std::string create = "CREATE (:Person {id: " + std::to_string(100 + i) +
                           ", score: " + std::to_string(i % 9) + "})";
      ASSERT_TRUE(session->Execute(create).ok());
      ASSERT_TRUE(
          session->Execute("MATCH (p:Person) WHERE p.id < 12 SET p.score = "
                           "p.score + 1")
              .ok());
      if (i % 3 == 2) {
        std::string del = "MATCH (p:Person {id: " +
                          std::to_string(100 + i - 2) + "}) DETACH DELETE p";
        ASSERT_TRUE(session->Execute(del).ok());
      }
      if (i % 4 == 3) {
        ASSERT_TRUE(session->Rollback().ok());
      } else {
        ASSERT_TRUE(session->Commit().ok());
      }
    }
  });

  for (auto& r : readers) r.join();
  writer.join();

  // Post-join sanity: the head reflects exactly the committed writer
  // rounds (rolled-back rounds i % 4 == 3 left no trace).
  int64_t created = 0, deleted = 0;
  for (int i = 0; i < kWriterCommits; ++i) {
    if (i % 4 == 3) continue;
    ++created;
    if (i % 3 == 2 && (i - 2) % 4 != 3) ++deleted;
  }
  auto fin = engine.Execute("MATCH (n) RETURN count(n) AS c");
  ASSERT_TRUE(fin.ok());
  EXPECT_EQ(fin->table.rows()[0][0].AsInt(), 12 + created - deleted);
}

TEST(Concurrent, AutoCommitWritersSerializeByWaiting) {
  // Without explicit transactions, concurrent updating statements WAIT
  // for the writer slot instead of surfacing conflicts: all effects
  // must land, exactly once each.
  CypherEngine engine;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 8;
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&engine, t] {
      for (int i = 0; i < kPerThread; ++i) {
        std::string q = "CREATE (:W {owner: " + std::to_string(t) +
                        ", seq: " + std::to_string(i) + "})";
        auto r = engine.Execute(q);
        ASSERT_TRUE(r.ok()) << r.status().ToString();
      }
    });
  }
  for (auto& w : writers) w.join();
  auto fin = engine.Execute("MATCH (w:W) RETURN count(w) AS c");
  ASSERT_TRUE(fin.ok());
  EXPECT_EQ(fin->table.rows()[0][0].AsInt(), kThreads * kPerThread);
}

}  // namespace
}  // namespace gqlite
