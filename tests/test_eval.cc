// Expression-evaluation tests: ⟦expr⟧G,u (§4.3) — operators, 3VL through
// the connectives and comparisons, arithmetic overloads, lists, maps,
// CASE, comprehensions, and temporal arithmetic.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

#include "src/eval/aggregation.h"
#include "src/eval/evaluator.h"
#include "src/frontend/parser.h"

namespace gqlite {
namespace {

Result<Value> Eval(const std::string& text, const Environment& env,
                   const PropertyGraph* g = nullptr) {
  auto expr = ParseExpression(text);
  if (!expr.ok()) return expr.status();
  EvalContext ctx;
  ctx.graph = g;
  static ValueMap no_params;
  ctx.parameters = &no_params;
  return EvaluateExpr(**expr, env, ctx);
}

Value MustEval(const std::string& text) {
  MapEnvironment env;
  auto r = Eval(text, env);
  EXPECT_TRUE(r.ok()) << text << ": " << r.status().ToString();
  return r.ok() ? *r : Value::Null();
}

#define EXPECT_EVAL_INT(text, want) \
  EXPECT_EQ(MustEval(text).AsInt(), (want)) << (text)
#define EXPECT_EVAL_NULL(text) \
  EXPECT_TRUE(MustEval(text).is_null()) << (text)
#define EXPECT_EVAL_BOOL(text, want) \
  EXPECT_EQ(MustEval(text).AsBool(), (want)) << (text)
#define EXPECT_EVAL_STR(text, want) \
  EXPECT_EQ(MustEval(text).AsString(), (want)) << (text)

TEST(EvalArithmetic, Integers) {
  EXPECT_EVAL_INT("1 + 2 * 3", 7);
  EXPECT_EVAL_INT("7 / 2", 3);   // integer division truncates
  EXPECT_EVAL_INT("7 % 3", 1);
  EXPECT_EVAL_INT("-(3 + 4)", -7);
  EXPECT_EVAL_INT("2 - 3 - 4", -5);
}

TEST(EvalArithmetic, Floats) {
  EXPECT_DOUBLE_EQ(MustEval("7.0 / 2").AsFloat(), 3.5);
  EXPECT_DOUBLE_EQ(MustEval("1 + 0.5").AsFloat(), 1.5);
  EXPECT_DOUBLE_EQ(MustEval("2 ^ 10").AsFloat(), 1024.0);  // pow is float
  EXPECT_DOUBLE_EQ(MustEval("7.5 % 2").AsFloat(), 1.5);
}

TEST(EvalArithmetic, NullPropagation) {
  EXPECT_EVAL_NULL("1 + null");
  EXPECT_EVAL_NULL("null * 2");
  EXPECT_EVAL_NULL("null / 0");  // null wins over the division error
  EXPECT_EVAL_NULL("-null");
}

TEST(EvalArithmetic, Errors) {
  MapEnvironment env;
  EXPECT_EQ(Eval("1 / 0", env).status().code(),
            StatusCode::kEvaluationError);
  EXPECT_EQ(Eval("1 % 0", env).status().code(),
            StatusCode::kEvaluationError);
  EXPECT_EQ(Eval("true + 1", env).status().code(), StatusCode::kTypeError);
  EXPECT_EQ(Eval("-'x'", env).status().code(), StatusCode::kTypeError);
}

TEST(EvalArithmetic, StringConcat) {
  EXPECT_EVAL_STR("'a' + 'b'", "ab");
  EXPECT_EVAL_STR("'n=' + 3", "n=3");
  EXPECT_EVAL_STR("1 + 'x'", "1x");
  EXPECT_EVAL_STR("'pi=' + 2.5", "pi=2.5");
}

TEST(EvalArithmetic, ListConcat) {
  Value v = MustEval("[1, 2] + [3]");
  ASSERT_TRUE(v.is_list());
  EXPECT_EQ(v.AsList().size(), 3u);
  v = MustEval("[1] + 2");  // append element
  EXPECT_EQ(v.AsList().size(), 2u);
  v = MustEval("0 + [1, 2]");  // prepend element
  EXPECT_EQ(v.AsList().size(), 3u);
  EXPECT_EQ(v.AsList()[0].AsInt(), 0);
}

TEST(EvalLogic, ConnectivesWithNull) {
  EXPECT_EVAL_BOOL("true AND true", true);
  EXPECT_EVAL_BOOL("true AND false", false);
  EXPECT_EVAL_NULL("true AND null");
  EXPECT_EVAL_BOOL("false AND null", false);  // false dominates
  EXPECT_EVAL_BOOL("true OR null", true);     // true dominates
  EXPECT_EVAL_NULL("false OR null");
  EXPECT_EVAL_NULL("null XOR true");
  EXPECT_EVAL_NULL("NOT null");
  EXPECT_EVAL_BOOL("NOT false", true);
}

TEST(EvalLogic, TypeErrorsOnNonBoolean) {
  MapEnvironment env;
  EXPECT_EQ(Eval("1 AND true", env).status().code(), StatusCode::kTypeError);
  EXPECT_EQ(Eval("NOT 'x'", env).status().code(), StatusCode::kTypeError);
}

TEST(EvalComparison, Numbers) {
  EXPECT_EVAL_BOOL("1 < 2", true);
  EXPECT_EVAL_BOOL("2 <= 2", true);
  EXPECT_EVAL_BOOL("2 > 2", false);
  EXPECT_EVAL_BOOL("2 >= 2.0", true);
  EXPECT_EVAL_BOOL("1 = 1.0", true);
  EXPECT_EVAL_BOOL("1 <> 2", true);
}

TEST(EvalComparison, NullsAndIncomparables) {
  EXPECT_EVAL_NULL("1 < null");
  EXPECT_EVAL_NULL("null = null");
  EXPECT_EVAL_NULL("1 < 'a'");
  EXPECT_EVAL_BOOL("1 = 'a'", false);  // equality across types is false
  EXPECT_EVAL_NULL("1 <= 'a'");
}

TEST(EvalComparison, StringsAndBooleans) {
  EXPECT_EVAL_BOOL("'abc' < 'abd'", true);
  EXPECT_EVAL_BOOL("'abc' = 'abc'", true);
  EXPECT_EVAL_BOOL("false < true", true);
}

TEST(EvalComparison, ListEquality3VL) {
  EXPECT_EVAL_BOOL("[1, 2] = [1, 2]", true);
  EXPECT_EVAL_BOOL("[1, 2] = [1, 3]", false);
  EXPECT_EVAL_NULL("[1, null] = [1, 2]");
  EXPECT_EVAL_BOOL("[1, null] = [2, null]", false);
  EXPECT_EVAL_BOOL("[1, [2, 3]] = [1, [2, 3]]", true);
}

TEST(EvalStringPredicates, Basics) {
  EXPECT_EVAL_BOOL("'hello' STARTS WITH 'he'", true);
  EXPECT_EVAL_BOOL("'hello' ENDS WITH 'lo'", true);
  EXPECT_EVAL_BOOL("'hello' CONTAINS 'ell'", true);
  EXPECT_EVAL_BOOL("'hello' CONTAINS 'xyz'", false);
  EXPECT_EVAL_NULL("null STARTS WITH 'a'");
  EXPECT_EVAL_NULL("'a' ENDS WITH null");
  EXPECT_EVAL_NULL("1 CONTAINS 'a'");  // non-string operand → null
}

TEST(EvalStringPredicates, Regex) {
  EXPECT_EVAL_BOOL("'hello' =~ 'h.*o'", true);
  EXPECT_EVAL_BOOL("'hello' =~ 'h'", false);  // full match semantics
  MapEnvironment env;
  EXPECT_EQ(Eval("'x' =~ '('", env).status().code(),
            StatusCode::kEvaluationError);
}

TEST(EvalIn, MembershipWith3VL) {
  EXPECT_EVAL_BOOL("2 IN [1, 2, 3]", true);
  EXPECT_EVAL_BOOL("4 IN [1, 2, 3]", false);
  EXPECT_EVAL_NULL("4 IN [1, null]");   // maybe the null was 4
  EXPECT_EVAL_BOOL("1 IN [1, null]", true);
  EXPECT_EVAL_NULL("null IN [1, 2]");
  EXPECT_EVAL_BOOL("null IN []", false);  // nothing to match in an empty list
  EXPECT_EVAL_NULL("2 IN null");
}

TEST(EvalListAccess, IndexAndSlice) {
  EXPECT_EVAL_INT("[10, 20, 30][0]", 10);
  EXPECT_EVAL_INT("[10, 20, 30][-1]", 30);
  EXPECT_EVAL_NULL("[10][5]");
  EXPECT_EVAL_NULL("[10][null]");
  Value v = MustEval("[1, 2, 3, 4][1..3]");
  ASSERT_TRUE(v.is_list());
  ASSERT_EQ(v.AsList().size(), 2u);
  EXPECT_EQ(v.AsList()[0].AsInt(), 2);
  EXPECT_EQ(MustEval("[1, 2, 3][..2]").AsList().size(), 2u);
  EXPECT_EQ(MustEval("[1, 2, 3][1..]").AsList().size(), 2u);
  EXPECT_EQ(MustEval("[1, 2, 3][-2..]").AsList().size(), 2u);
  EXPECT_EQ(MustEval("[1, 2, 3][2..1]").AsList().size(), 0u);
}

TEST(EvalMapAccess, KeysAndMissing) {
  EXPECT_EVAL_INT("{a: 1, b: 2}.a", 1);
  EXPECT_EVAL_NULL("{a: 1}.missing");
  EXPECT_EVAL_INT("{a: {b: 3}}.a.b", 3);
  EXPECT_EVAL_INT("{a: 1}['a']", 1);
  EXPECT_EVAL_NULL("null.k");
}

TEST(EvalCase, SimpleAndSearched) {
  EXPECT_EVAL_STR("CASE 2 WHEN 1 THEN 'one' WHEN 2 THEN 'two' END", "two");
  EXPECT_EVAL_NULL("CASE 9 WHEN 1 THEN 'one' END");
  EXPECT_EVAL_STR("CASE 9 WHEN 1 THEN 'one' ELSE 'other' END", "other");
  EXPECT_EVAL_STR("CASE WHEN 1 > 2 THEN 'a' WHEN 2 > 1 THEN 'b' END", "b");
  // Simple CASE compares with equality: null never matches.
  EXPECT_EVAL_STR("CASE null WHEN null THEN 'n' ELSE 'e' END", "e");
}

TEST(EvalListComprehension, FilterAndMap) {
  Value v = MustEval("[x IN [1, 2, 3, 4] WHERE x % 2 = 0 | x * 10]");
  ASSERT_TRUE(v.is_list());
  ASSERT_EQ(v.AsList().size(), 2u);
  EXPECT_EQ(v.AsList()[0].AsInt(), 20);
  EXPECT_EQ(v.AsList()[1].AsInt(), 40);
  EXPECT_EQ(MustEval("[x IN [1, 2, 3] WHERE x > 1]").AsList().size(), 2u);
  EXPECT_EQ(MustEval("[x IN [1, 2] | x + 1]").AsList()[0].AsInt(), 2);
  EXPECT_EVAL_NULL("[x IN null | x]");
  // Shadowing: inner variable hides outer.
  MapEnvironment env;
  env.Set("x", Value::Int(100));
  auto r = Eval("[x IN [1] | x]", env);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->AsList()[0].AsInt(), 1);
}

TEST(EvalNullChecks, IsNull) {
  EXPECT_EVAL_BOOL("null IS NULL", true);
  EXPECT_EVAL_BOOL("1 IS NULL", false);
  EXPECT_EVAL_BOOL("null IS NOT NULL", false);
  EXPECT_EVAL_BOOL("(null = null) IS NULL", true);
}

TEST(EvalVariables, LookupAndMissing) {
  MapEnvironment env;
  env.Set("x", Value::Int(5));
  auto r = Eval("x * 2", env);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->AsInt(), 10);
  EXPECT_FALSE(Eval("y", env).ok());
}

TEST(EvalGraphAccess, PropertiesAndLabels) {
  PropertyGraph g;
  NodeId n = g.CreateNode({"Person"}, {{"name", Value::String("Ada")},
                                       {"age", Value::Int(36)}});
  NodeId m = g.CreateNode({"Robot"});
  RelId r = g.CreateRelationship(n, m, "MADE", {{"year", Value::Int(1842)}})
                .value();
  MapEnvironment env;
  env.Set("n", Value::Node(n));
  env.Set("m", Value::Node(m));
  env.Set("r", Value::Relationship(r));

  auto v = Eval("n.name", env, &g);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsString(), "Ada");
  EXPECT_TRUE(Eval("n.nope", env, &g)->is_null());
  EXPECT_EQ(Eval("r.year", env, &g)->AsInt(), 1842);
  EXPECT_TRUE(Eval("n:Person", env, &g)->AsBool());
  EXPECT_FALSE(Eval("m:Person", env, &g)->AsBool());
  EXPECT_FALSE(Eval("n:Person:Robot", env, &g)->AsBool());
  // Dynamic property access through indexing.
  EXPECT_EQ(Eval("n['age']", env, &g)->AsInt(), 36);
}

TEST(EvalTemporalArithmetic, DatePlusDuration) {
  EXPECT_EQ(MustEval("date('2018-01-31') + duration('P1M')")
                .AsDate()
                .ToString(),
            "2018-02-28");
  EXPECT_EQ(MustEval("date('2018-06-10') - duration('P10D')")
                .AsDate()
                .ToString(),
            "2018-05-31");
  EXPECT_EQ(MustEval("duration('P1D') + duration('PT12H')")
                .AsDuration()
                .ToString(),
            "P1DT12H");
  EXPECT_EQ(MustEval("duration('PT1H') * 3").AsDuration().seconds, 10800);
  // Instant difference → duration.
  EXPECT_EQ(MustEval("date('2018-06-20') - date('2018-06-10')")
                .AsDuration()
                .days,
            10);
}

TEST(EvalTemporalComparison, SameFamilyOnly) {
  EXPECT_EVAL_BOOL("date('2018-01-01') < date('2018-06-10')", true);
  EXPECT_EVAL_NULL("date('2018-01-01') < localtime('12:00')");
  EXPECT_EVAL_BOOL(
      "datetime('2018-06-10T14:00:00+02:00') = "
      "datetime('2018-06-10T12:00:00Z')",
      true);  // same instant
}

TEST(EvalExists, PropertyForm) {
  PropertyGraph g;
  NodeId n = g.CreateNode({}, {{"x", Value::Int(1)}});
  MapEnvironment env;
  env.Set("n", Value::Node(n));
  EXPECT_TRUE(Eval("exists(n.x)", env, &g)->AsBool());
  EXPECT_FALSE(Eval("exists(n.y)", env, &g)->AsBool());
}

TEST(EvalPredicate, RequiresBooleanOrNull) {
  MapEnvironment env;
  EvalContext ctx;
  auto expr = ParseExpression("1 + 1");
  ASSERT_TRUE(expr.ok());
  auto r = EvaluatePredicate(**expr, env, ctx);
  EXPECT_EQ(r.status().code(), StatusCode::kTypeError);
  auto ok_expr = ParseExpression("null");
  auto ok = EvaluatePredicate(**ok_expr, env, ctx);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, Tri::kNull);
}

TEST(EvalParameters, Lookup) {
  auto expr = ParseExpression("$p * 2");
  ASSERT_TRUE(expr.ok());
  ValueMap params;
  params["p"] = Value::Int(21);
  EvalContext ctx;
  ctx.parameters = &params;
  MapEnvironment env;
  auto r = EvaluateExpr(**expr, env, ctx);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->AsInt(), 42);
  ValueMap empty;
  ctx.parameters = &empty;
  EXPECT_FALSE(EvaluateExpr(**expr, env, ctx).ok());
}

Status MustFail(const std::string& text) {
  MapEnvironment env;
  auto r = Eval(text, env);
  EXPECT_FALSE(r.ok()) << text << " unexpectedly evaluated";
  return r.ok() ? Status::OK() : r.status();
}

TEST(EvalArithmetic, IntegerOverflowRaises) {
  // Signed wrap-around is UB in C++ and an error per openCypher: every
  // checked op must surface EvaluationError, not INT64_MIN-flavoured junk.
  for (const char* text : {
           "9223372036854775807 + 1",
           "-9223372036854775808 - 1",
           "9223372036854775807 * 2",
           "-9223372036854775808 * -1",
           "-9223372036854775808 / -1",
           "-(-9223372036854775808)",
       }) {
    Status s = MustFail(text);
    EXPECT_EQ(s.code(), StatusCode::kEvaluationError) << text;
    EXPECT_NE(s.message().find("integer overflow"), std::string::npos)
        << text << ": " << s.ToString();
  }
}

TEST(EvalArithmetic, Int64BoundaryValues) {
  EXPECT_EVAL_INT("-9223372036854775808", INT64_MIN);
  EXPECT_EVAL_INT("9223372036854775807", INT64_MAX);
  EXPECT_EVAL_INT("-9223372036854775808 + 1", INT64_MIN + 1);
  EXPECT_EVAL_INT("9223372036854775807 + -1", INT64_MAX - 1);
  // INT64_MIN % -1 is mathematically 0 (and UB if done naively).
  EXPECT_EVAL_INT("-9223372036854775808 % -1", 0);
  EXPECT_EVAL_INT("-9223372036854775808 / 1", INT64_MIN);
  // Overflow still propagates null before it can raise.
  EXPECT_EVAL_NULL("null + 9223372036854775807");
}

TEST(EvalArithmetic, RangeStopsAtInt64Max) {
  Value v = MustEval(
      "range(9223372036854775805, 9223372036854775807)");
  ASSERT_TRUE(v.is_list());
  ASSERT_EQ(v.AsList().size(), 3u);
  EXPECT_EQ(v.AsList().back().AsInt(), INT64_MAX);
}

// ---- Aggregation overflow (sum/avg route through the checked helpers) ------

Status FeedAll(Aggregator* agg, std::initializer_list<Value> values) {
  for (const Value& v : values) {
    Status s = agg->Accumulate(v);
    if (!s.ok()) return s;
  }
  return Status::OK();
}

TEST(EvalAggregation, SumIntOverflowRaises) {
  auto agg = MakeAggregator("sum", false);
  ASSERT_TRUE(agg.ok());
  Status s = FeedAll(agg->get(),
                     {Value::Int(INT64_MAX), Value::Int(1)});
  EXPECT_EQ(s.code(), StatusCode::kEvaluationError) << s.ToString();
  EXPECT_NE(s.message().find("integer overflow"), std::string::npos)
      << s.ToString();
}

TEST(EvalAggregation, SumIntNegativeOverflowRaises) {
  auto agg = MakeAggregator("sum", false);
  ASSERT_TRUE(agg.ok());
  Status s = FeedAll(agg->get(),
                     {Value::Int(INT64_MIN), Value::Int(-1)});
  EXPECT_EQ(s.code(), StatusCode::kEvaluationError) << s.ToString();
}

TEST(EvalAggregation, SumAtInt64BoundaryIsExact) {
  auto agg = MakeAggregator("sum", false);
  ASSERT_TRUE(agg.ok());
  ASSERT_TRUE(FeedAll(agg->get(), {Value::Int(INT64_MAX - 5),
                                   Value::Int(3), Value::Int(2)})
                  .ok());
  auto v = (*agg)->Finish();
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsInt(), INT64_MAX);
}

TEST(EvalAggregation, SumSwitchesToFloatOnMixedInput) {
  auto agg = MakeAggregator("sum", false);
  ASSERT_TRUE(agg.ok());
  ASSERT_TRUE(FeedAll(agg->get(), {Value::Int(1), Value::Float(0.5)}).ok());
  // Once float, int64 overflow no longer applies.
  ASSERT_TRUE((*agg)->Accumulate(Value::Int(INT64_MAX)).ok());
  auto v = (*agg)->Finish();
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->is_float());
}

TEST(EvalAggregation, AvgIntOverflowFallsBackToFloat) {
  // avg() returns a float regardless, so an int64-overflowing running
  // sum must not reject the input — it degrades to float accumulation
  // (the mean itself is representable).
  auto agg = MakeAggregator("avg", false);
  ASSERT_TRUE(agg.ok());
  ASSERT_TRUE(FeedAll(agg->get(),
                      {Value::Int(INT64_MAX), Value::Int(INT64_MAX)})
                  .ok());
  auto v = (*agg)->Finish();
  ASSERT_TRUE(v.ok());
  EXPECT_DOUBLE_EQ(v->AsFloat(), static_cast<double>(INT64_MAX));
}

TEST(EvalAggregation, AvgOfLargeIntsIsExact) {
  // Doubles lose integer precision past 2^53; the checked int64
  // accumulator keeps the sum exact until Finish.
  auto agg = MakeAggregator("avg", false);
  ASSERT_TRUE(agg.ok());
  int64_t big = (int64_t{1} << 60) + 2;
  ASSERT_TRUE(FeedAll(agg->get(), {Value::Int(big), Value::Int(big)}).ok());
  auto v = (*agg)->Finish();
  ASSERT_TRUE(v.ok());
  EXPECT_DOUBLE_EQ(v->AsFloat(), static_cast<double>(big));
}

TEST(EvalAggregation, AvgMixedStillFloat) {
  auto agg = MakeAggregator("avg", false);
  ASSERT_TRUE(agg.ok());
  ASSERT_TRUE(
      FeedAll(agg->get(), {Value::Int(1), Value::Float(2.0)}).ok());
  auto v = (*agg)->Finish();
  ASSERT_TRUE(v.ok());
  EXPECT_DOUBLE_EQ(v->AsFloat(), 1.5);
}

}  // namespace
}  // namespace gqlite
