#include <gtest/gtest.h>

#include "src/graph/graph_catalog.h"
#include "src/graph/graph_statistics.h"
#include "src/graph/property_graph.h"
#include "src/workload/generators.h"
#include "src/workload/paper_graphs.h"

namespace gqlite {
namespace {

TEST(PropertyGraph, CreateNodesAndRels) {
  PropertyGraph g;
  NodeId a = g.CreateNode({"Person"}, {{"name", Value::String("Ada")}});
  NodeId b = g.CreateNode({"Person", "Admin"});
  auto r = g.CreateRelationship(a, b, "KNOWS", {{"since", Value::Int(1985)}});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(g.NumNodes(), 2u);
  EXPECT_EQ(g.NumRels(), 1u);
  EXPECT_EQ(g.Source(*r), a);
  EXPECT_EQ(g.Target(*r), b);
  EXPECT_EQ(g.RelType(*r), "KNOWS");
  EXPECT_EQ(g.RelProperty(*r, "since").AsInt(), 1985);
  EXPECT_TRUE(g.NodeHasLabel(a, "Person"));
  EXPECT_TRUE(g.NodeHasLabel(b, "Admin"));
  EXPECT_FALSE(g.NodeHasLabel(a, "Admin"));
}

TEST(PropertyGraph, PropertyAbsentIsNull) {
  PropertyGraph g;
  NodeId a = g.CreateNode();
  EXPECT_TRUE(g.NodeProperty(a, "nope").is_null());
}

TEST(PropertyGraph, SetAndRemoveProperty) {
  PropertyGraph g;
  NodeId a = g.CreateNode();
  EXPECT_EQ(g.SetNodeProperty(a, "x", Value::Int(1)), 1);
  EXPECT_EQ(g.NodeProperty(a, "x").AsInt(), 1);
  EXPECT_EQ(g.SetNodeProperty(a, "x", Value::Int(2)), 1);
  EXPECT_EQ(g.NodeProperty(a, "x").AsInt(), 2);
  // Setting null removes (Cypher SET n.x = null).
  EXPECT_EQ(g.SetNodeProperty(a, "x", Value::Null()), 1);
  EXPECT_TRUE(g.NodeProperty(a, "x").is_null());
  EXPECT_EQ(g.SetNodeProperty(a, "y", Value::Null()), 0);
  EXPECT_TRUE(g.NodePropertyKeys(a).empty());
}

TEST(PropertyGraph, NullPropertiesSkippedAtCreation) {
  PropertyGraph g;
  NodeId a = g.CreateNode({}, {{"x", Value::Null()}, {"y", Value::Int(1)}});
  EXPECT_EQ(g.NodePropertyKeys(a).size(), 1u);
  EXPECT_EQ(g.NodeProperties(a).size(), 1u);
}

TEST(PropertyGraph, AdjacencyIsDirect) {
  PropertyGraph g;
  NodeId a = g.CreateNode();
  NodeId b = g.CreateNode();
  NodeId c = g.CreateNode();
  RelId r1 = g.CreateRelationship(a, b, "T").value();
  RelId r2 = g.CreateRelationship(a, c, "T").value();
  RelId r3 = g.CreateRelationship(b, a, "U").value();
  EXPECT_EQ(g.OutRels(a).size(), 2u);
  EXPECT_EQ(g.InRels(a).size(), 1u);
  EXPECT_EQ(g.Degree(a), 3u);
  EXPECT_EQ(g.OtherEnd(r1, a), b);
  EXPECT_EQ(g.OtherEnd(r1, b), a);
  EXPECT_EQ(g.OtherEnd(r2, a), c);
  EXPECT_EQ(g.OtherEnd(r3, a), b);
}

TEST(PropertyGraph, LabelIndex) {
  PropertyGraph g;
  NodeId a = g.CreateNode({"X"});
  g.CreateNode({"Y"});
  NodeId c = g.CreateNode({"X"});
  const auto& xs = g.NodesWithLabel("X");
  ASSERT_EQ(xs.size(), 2u);
  EXPECT_EQ(xs[0], a);
  EXPECT_EQ(xs[1], c);
  EXPECT_TRUE(g.NodesWithLabel("Nope").empty());
}

TEST(PropertyGraph, AddRemoveLabelMaintainsIndex) {
  PropertyGraph g;
  NodeId a = g.CreateNode({"X"});
  EXPECT_TRUE(g.AddLabel(a, "Y"));
  EXPECT_FALSE(g.AddLabel(a, "Y"));  // already present
  EXPECT_EQ(g.NodesWithLabel("Y").size(), 1u);
  EXPECT_TRUE(g.RemoveLabel(a, "X"));
  EXPECT_FALSE(g.RemoveLabel(a, "X"));
  EXPECT_TRUE(g.NodesWithLabel("X").empty());
  EXPECT_EQ(g.NodeLabels(a), std::vector<std::string>{"Y"});
}

TEST(PropertyGraph, DeleteRules) {
  PropertyGraph g;
  NodeId a = g.CreateNode();
  NodeId b = g.CreateNode();
  RelId r = g.CreateRelationship(a, b, "T").value();
  // Cannot delete a node with relationships.
  EXPECT_FALSE(g.DeleteNode(a).ok());
  ASSERT_TRUE(g.DeleteRelationship(r).ok());
  EXPECT_FALSE(g.IsRelAlive(r));
  EXPECT_EQ(g.Degree(a), 0u);
  ASSERT_TRUE(g.DeleteNode(a).ok());
  EXPECT_FALSE(g.IsNodeAlive(a));
  EXPECT_EQ(g.NumNodes(), 1u);
  // Double delete fails cleanly.
  EXPECT_FALSE(g.DeleteNode(a).ok());
  EXPECT_FALSE(g.DeleteRelationship(r).ok());
}

TEST(PropertyGraph, DetachDelete) {
  PropertyGraph g;
  NodeId a = g.CreateNode();
  NodeId b = g.CreateNode();
  g.CreateRelationship(a, b, "T").value();
  g.CreateRelationship(b, a, "T").value();
  g.CreateRelationship(a, a, "SELF").value();
  ASSERT_TRUE(g.DetachDeleteNode(a).ok());
  EXPECT_EQ(g.NumRels(), 0u);
  EXPECT_EQ(g.NumNodes(), 1u);
  EXPECT_TRUE(g.IsNodeAlive(b));
}

TEST(PropertyGraph, RelationshipToDeletedNodeFails) {
  PropertyGraph g;
  NodeId a = g.CreateNode();
  NodeId b = g.CreateNode();
  ASSERT_TRUE(g.DeleteNode(b).ok());
  EXPECT_FALSE(g.CreateRelationship(a, b, "T").ok());
  EXPECT_FALSE(g.CreateRelationship(a, NodeId{999}, "T").ok());
  EXPECT_FALSE(g.CreateRelationship(a, a, "").ok());  // τ total
}

TEST(PropertyGraph, RenderShowsLabelsAndProps) {
  PropertyGraph g;
  NodeId a = g.CreateNode({"Person"}, {{"name", Value::String("Nils")}});
  EXPECT_EQ(g.Render(Value::Node(a)), "(:Person {name: 'Nils'})");
  NodeId b = g.CreateNode();
  RelId r = g.CreateRelationship(a, b, "KNOWS").value();
  EXPECT_EQ(g.Render(Value::Relationship(r)), "[:KNOWS]");
  Path p;
  p.nodes = {a, b};
  p.rels = {r};
  EXPECT_EQ(g.Render(Value::MakePath(p)),
            "(:Person {name: 'Nils'})-[:KNOWS]->()");
}

TEST(Snapshot, StableUnderSubsequentMutation) {
  PropertyGraph g;
  NodeId a = g.CreateNode({"Person"}, {{"name", Value::String("Ada")}});
  NodeId b = g.CreateNode({"Person"});
  RelId r = g.CreateRelationship(a, b, "KNOWS").value();

  auto snap = g.Snapshot();
  ASSERT_TRUE(snap->frozen());
  EXPECT_FALSE(g.frozen());

  // Mutate every COW surface on the live graph: slot pages (property
  // set, new node, delete), label-index postings, adjacency.
  g.SetNodeProperty(a, "name", Value::String("Grace"));
  g.CreateNode({"Person"});
  g.AddLabel(b, "Admin");
  ASSERT_TRUE(g.DeleteRelationship(r).ok());
  ASSERT_TRUE(g.DeleteNode(b).ok());

  // The snapshot still answers with pre-mutation state.
  EXPECT_EQ(snap->NumNodes(), 2u);
  EXPECT_EQ(snap->NumRels(), 1u);
  EXPECT_EQ(snap->NodeProperty(a, "name").AsString(), "Ada");
  EXPECT_TRUE(snap->IsRelAlive(r));
  EXPECT_TRUE(snap->IsNodeAlive(b));
  EXPECT_FALSE(snap->NodeHasLabel(b, "Admin"));
  EXPECT_EQ(snap->NodesWithLabel("Person").size(), 2u);
  // And the live graph moved on.
  EXPECT_EQ(g.NumNodes(), 2u);  // +1 created, -1 deleted
  EXPECT_EQ(g.NodeProperty(a, "name").AsString(), "Grace");
  EXPECT_EQ(g.NodesWithLabel("Person").size(), 2u);
}

TEST(Snapshot, MutatorsOnFrozenGraphFail) {
  PropertyGraph g;
  NodeId a = g.CreateNode();
  NodeId b = g.CreateNode();
  RelId r = g.CreateRelationship(a, b, "T").value();
  auto snap = g.Snapshot();

  EXPECT_FALSE(snap->CreateRelationship(a, b, "T").ok());
  EXPECT_FALSE(snap->DeleteRelationship(r).ok());
  EXPECT_FALSE(snap->DeleteNode(a).ok());
  EXPECT_FALSE(snap->DetachDeleteNode(a).ok());
  // The snapshot is byte-for-byte intact afterwards.
  EXPECT_EQ(snap->NumNodes(), 2u);
  EXPECT_EQ(snap->NumRels(), 1u);
}

TEST(Snapshot, CloneIsIndependentAndMutable) {
  PropertyGraph g;
  NodeId a = g.CreateNode({"Person"});
  auto snap = g.Snapshot();
  auto clone = snap->Clone();
  ASSERT_FALSE(clone->frozen());

  clone->AddLabel(a, "Admin");
  clone->CreateNode({"Person"});
  EXPECT_EQ(clone->NumNodes(), 2u);
  EXPECT_TRUE(clone->NodeHasLabel(a, "Admin"));
  // Neither the snapshot nor the original saw the clone's writes.
  EXPECT_EQ(snap->NumNodes(), 1u);
  EXPECT_FALSE(snap->NodeHasLabel(a, "Admin"));
  EXPECT_EQ(g.NumNodes(), 1u);
  EXPECT_FALSE(g.NodeHasLabel(a, "Admin"));
}

TEST(Snapshot, ChainedSnapshotsEachPinTheirEpoch) {
  PropertyGraph g;
  g.CreateNode({"A"});
  auto s1 = g.Snapshot();
  g.CreateNode({"A"});
  auto s2 = g.Snapshot();
  g.CreateNode({"A"});

  EXPECT_EQ(s1->NumNodes(), 1u);
  EXPECT_EQ(s2->NumNodes(), 2u);
  EXPECT_EQ(g.NumNodes(), 3u);
  EXPECT_EQ(s1->NodesWithLabel("A").size(), 1u);
  EXPECT_EQ(s2->NodesWithLabel("A").size(), 2u);
}

TEST(Snapshot, DataVersionTracksEveryMutation) {
  PropertyGraph g;
  NodeId a = g.CreateNode();
  uint64_t v = g.data_version();
  // Property sets bump data_version (snapshot refresh) but not
  // stats_version (plan-cache statistics guards).
  uint64_t sv = g.stats_version();
  EXPECT_EQ(g.SetNodeProperty(a, "x", Value::Int(1)), 1);
  EXPECT_GT(g.data_version(), v);
  EXPECT_EQ(g.stats_version(), sv);
  // A no-op (removing an absent key) does not bump it.
  v = g.data_version();
  EXPECT_EQ(g.SetNodeProperty(a, "absent", Value::Null()), 0);
  EXPECT_EQ(g.data_version(), v);
}

TEST(GraphStatistics, Counts) {
  workload::CitationConfig cfg;
  cfg.num_researchers = 10;
  GraphPtr g = workload::MakeCitationGraph(cfg);
  GraphStatistics stats(*g);
  EXPECT_EQ(stats.NodesWithLabel("Researcher"), 10);
  EXPECT_GT(stats.NodesWithLabel("Publication"), 0);
  EXPECT_GT(stats.RelsWithType("AUTHORS"), 0);
  EXPECT_EQ(stats.RelsWithType("NOPE"), 0);
  EXPECT_GT(stats.AvgDegree(""), 0);
  EXPECT_EQ(stats.RelsWithType(""), stats.RelCount());
}

TEST(GraphCatalog, ResolveByNameAndUrl) {
  // The catalog locks internally; no external MutexLock needed.
  GraphCatalog cat;
  EXPECT_TRUE(cat.HasGraph(GraphCatalog::kDefaultGraphName));
  auto g = std::make_shared<PropertyGraph>();
  cat.RegisterGraph("soc_net", g);
  cat.RegisterUrl("hdfs://cluster/soc_network", g);
  ASSERT_TRUE(cat.Resolve("soc_net").ok());
  EXPECT_EQ(cat.Resolve("soc_net").value().get(), g.get());
  EXPECT_EQ(cat.ResolveUrl("hdfs://cluster/soc_network").value().get(),
            g.get());
  EXPECT_FALSE(cat.Resolve("nope").ok());
  EXPECT_FALSE(cat.ResolveUrl("bolt://nope").ok());
}

// ---- Paper graphs ----------------------------------------------------------

TEST(PaperGraphs, Figure1MatchesExample41) {
  workload::PaperFigure1 f = workload::MakePaperFigure1Graph();
  const PropertyGraph& g = *f.graph;
  EXPECT_EQ(g.NumNodes(), 10u);
  EXPECT_EQ(g.NumRels(), 11u);
  // Labels per Figure 1 (Example 4.1's swap is an erratum; see DESIGN.md).
  for (int i : {1, 6, 10}) EXPECT_TRUE(g.NodeHasLabel(f.n[i], "Researcher"));
  for (int i : {7, 8}) EXPECT_TRUE(g.NodeHasLabel(f.n[i], "Student"));
  for (int i : {2, 3, 4, 5, 9}) {
    EXPECT_TRUE(g.NodeHasLabel(f.n[i], "Publication"));
  }
  // src/tgt per Example 4.1.
  EXPECT_EQ(g.Source(f.r[4]), f.n[5]);
  EXPECT_EQ(g.Target(f.r[4]), f.n[2]);
  EXPECT_EQ(g.Source(f.r[11]), f.n[9]);
  EXPECT_EQ(g.Target(f.r[11]), f.n[5]);
  // ι samples.
  EXPECT_EQ(g.NodeProperty(f.n[1], "name").AsString(), "Nils");
  EXPECT_EQ(g.NodeProperty(f.n[2], "acmid").AsInt(), 220);
  EXPECT_EQ(g.NodeProperty(f.n[10], "name").AsString(), "Thor");
  // τ samples.
  EXPECT_EQ(g.RelType(f.r[1]), "AUTHORS");
  EXPECT_EQ(g.RelType(f.r[6]), "SUPERVISES");
  EXPECT_EQ(g.RelType(f.r[9]), "CITES");
}

TEST(PaperGraphs, Figure4Chain) {
  workload::PaperFigure4 f = workload::MakePaperFigure4Graph();
  const PropertyGraph& g = *f.graph;
  EXPECT_EQ(g.NumNodes(), 4u);
  EXPECT_EQ(g.NumRels(), 3u);
  EXPECT_TRUE(g.NodeHasLabel(f.n[1], "Teacher"));
  EXPECT_TRUE(g.NodeHasLabel(f.n[2], "Student"));
  EXPECT_TRUE(g.NodeHasLabel(f.n[3], "Teacher"));
  EXPECT_TRUE(g.NodeHasLabel(f.n[4], "Teacher"));
  EXPECT_EQ(g.Source(f.r[2]), f.n[2]);
  EXPECT_EQ(g.Target(f.r[2]), f.n[3]);
}

TEST(PaperGraphs, SelfLoop) {
  workload::SelfLoop s = workload::MakeSelfLoopGraph();
  EXPECT_EQ(s.graph->NumNodes(), 1u);
  EXPECT_EQ(s.graph->NumRels(), 1u);
  EXPECT_EQ(s.graph->Source(s.rel), s.node);
  EXPECT_EQ(s.graph->Target(s.rel), s.node);
}

// ---- Generators -------------------------------------------------------------

TEST(Generators, ChainAndCycle) {
  GraphPtr chain = workload::MakeChain(5);
  EXPECT_EQ(chain->NumNodes(), 5u);
  EXPECT_EQ(chain->NumRels(), 4u);
  GraphPtr cycle = workload::MakeCycle(5);
  EXPECT_EQ(cycle->NumRels(), 5u);
}

TEST(Generators, Grid) {
  GraphPtr g = workload::MakeGrid(3, 4);
  EXPECT_EQ(g->NumNodes(), 12u);
  // 3*(4-1) RIGHT + (3-1)*4 DOWN = 9 + 8.
  EXPECT_EQ(g->NumRels(), 17u);
}

TEST(Generators, Clique) {
  GraphPtr g = workload::MakeClique(4);
  EXPECT_EQ(g->NumNodes(), 4u);
  EXPECT_EQ(g->NumRels(), 12u);
}

TEST(Generators, FraudRingsShareSSN) {
  workload::FraudConfig cfg;
  cfg.num_holders = 20;
  cfg.num_rings = 2;
  cfg.ring_size = 3;
  GraphPtr g = workload::MakeFraudGraph(cfg);
  GraphStatistics stats(*g);
  EXPECT_EQ(stats.NodesWithLabel("AccountHolder"), 20);
  // Each ring SSN has ring_size incoming HAS edges.
  const auto& ssns = g->NodesWithLabel("SSN");
  size_t shared = 0;
  for (NodeId s : ssns) {
    if (g->InRels(s).size() >= 3) ++shared;
  }
  EXPECT_EQ(shared, 2u);
}

TEST(Generators, DeterministicBySeed) {
  GraphPtr a = workload::MakeRandomGraph(50, 100, 7);
  GraphPtr b = workload::MakeRandomGraph(50, 100, 7);
  EXPECT_EQ(a->NumNodes(), b->NumNodes());
  EXPECT_EQ(a->NumRels(), b->NumRels());
  for (size_t i = 0; i < a->NumRelSlots(); ++i) {
    RelId r{i};
    EXPECT_EQ(a->Source(r), b->Source(r));
    EXPECT_EQ(a->Target(r), b->Target(r));
    EXPECT_EQ(a->RelType(r), b->RelType(r));
  }
}

TEST(Generators, SocialNetworkShape) {
  workload::SocialConfig cfg;
  cfg.num_people = 100;
  cfg.avg_friends = 4;
  cfg.num_cities = 5;
  GraphPtr g = workload::MakeSocialNetwork(cfg);
  GraphStatistics stats(*g);
  EXPECT_EQ(stats.NodesWithLabel("Person"), 100);
  EXPECT_EQ(stats.NodesWithLabel("City"), 5);
  EXPECT_EQ(stats.RelsWithType("IN"), 100);
  EXPECT_GT(stats.RelsWithType("FRIEND"), 100);
}

TEST(Generators, DependencyLayers) {
  workload::DependencyConfig cfg;
  cfg.layers = 3;
  cfg.per_layer = 10;
  cfg.fanout = 2;
  GraphPtr g = workload::MakeDependencyNetwork(cfg);
  EXPECT_EQ(g->NumNodes(), 30u);
  EXPECT_EQ(g->NumRels(), 2u * 10u * 2u);  // (layers-1) * per_layer * fanout
}

}  // namespace
}  // namespace gqlite
