// Crash recovery: kill the process mid-commit at a sweep of WAL byte
// offsets (via the writer's GQLITE_WAL_CRASH_AFTER_BYTES injection
// point) and verify that reopening the database always recovers an
// exact prefix of the acknowledged commits — never a torn suffix,
// never a lost acknowledged write.
#include <gtest/gtest.h>

#include <sys/resource.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "src/core/database.h"

namespace gqlite {
namespace {

namespace fs = std::filesystem;

constexpr int kCommits = 12;
constexpr int kCrashExit = 137;  // WalWriter's simulated power loss

std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "gqlite_crash_" + name;
  fs::remove_all(dir);
  return dir;
}

// The workload under test: open the database at `dir` and commit
// kCommits single-node CREATEs, one transaction each. Returns the
// number of acknowledged commits (all of them, unless the injected
// crash fires first and the process never returns).
int RunWorkload(const std::string& dir) {
  auto opened = Database::Open(dir);
  if (!opened.ok()) return -1;
  Database db = std::move(*opened);
  for (int i = 0; i < kCommits; ++i) {
    auto r = db.Execute("CREATE (:K {i: " + std::to_string(i) + "})");
    if (!r.ok()) return -1;
  }
  return kCommits;
}

// Forks a child that runs the workload with the crash injection set to
// `crash_after_bytes` (< 0: injection off) and returns its exit code.
int RunWorkloadInChild(const std::string& dir, int64_t crash_after_bytes) {
  pid_t pid = fork();
  if (pid == 0) {
    if (crash_after_bytes >= 0) {
      setenv("GQLITE_WAL_CRASH_AFTER_BYTES",
             std::to_string(crash_after_bytes).c_str(), /*overwrite=*/1);
    }
    int acked = RunWorkload(dir);
    _exit(acked == kCommits ? 0 : 1);
  }
  int status = 0;
  EXPECT_EQ(waitpid(pid, &status, 0), pid);
  EXPECT_TRUE(WIFEXITED(status));
  return WEXITSTATUS(status);
}

// The recovered graph must hold exactly the nodes {0 .. c-1} for some
// prefix length c — acknowledged commits survive in order, the torn
// one vanishes entirely. Returns c.
int VerifyRecoveredPrefix(const std::string& dir) {
  auto opened = Database::Open(dir);
  EXPECT_TRUE(opened.ok()) << opened.status().ToString();
  if (!opened.ok()) return -1;
  Database db = std::move(*opened);
  auto r = db.Execute("MATCH (n:K) RETURN n.i AS i ORDER BY i");
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  if (!r.ok()) return -1;
  const auto& rows = r->table.rows();
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(rows[i][0].AsInt(), static_cast<int64_t>(i))
        << "recovered commits are not a prefix";
  }
  // The recovered database must also accept new commits (the torn tail
  // was truncated, so the log is append-ready again).
  EXPECT_TRUE(db.Execute("CREATE (:Post)").ok());
  return static_cast<int>(rows.size());
}

TEST(CrashRecovery, KillMidCommitSweep) {
  // Measure the healthy run once to know the log's full extent.
  std::string baseline = FreshDir("baseline");
  ASSERT_EQ(RunWorkloadInChild(baseline, -1), 0);
  uint64_t full_size = fs::file_size(baseline + "/wal.log");
  ASSERT_GT(full_size, 12u);  // header + frames

  // Sweep crash offsets across the whole log: inside the initial
  // header write (0..11 — recovery must rewrite the header and keep it
  // through the tail truncation), the header boundary, then a fixed
  // stride (plus ±1 to land inside frame headers and payloads alike).
  // Every offset must yield exit 137 and a clean prefix on reopen.
  std::vector<uint64_t> offsets = {0, 1, 5, 11, 12, 13};
  uint64_t stride = full_size / 8 + 1;
  for (uint64_t off = stride; off < full_size; off += stride) {
    offsets.push_back(off);
    offsets.push_back(off + 1);
  }
  int prev_recovered = 0;
  for (uint64_t off : offsets) {
    if (off >= full_size) continue;
    std::string dir =
        FreshDir("sweep_" + std::to_string(static_cast<long long>(off)));
    EXPECT_EQ(RunWorkloadInChild(dir, static_cast<int64_t>(off)), kCrashExit)
        << "offset " << off;
    int recovered = VerifyRecoveredPrefix(dir);
    ASSERT_GE(recovered, 0) << "offset " << off;
    EXPECT_LT(recovered, kCommits) << "offset " << off;
    // Reopen once more: recovery's repairs (header rewrite, tail
    // truncation) and the commit VerifyRecoveredPrefix made must
    // themselves be durable — a log left headerless would fail here.
    EXPECT_EQ(VerifyRecoveredPrefix(dir), recovered) << "offset " << off;
    // A later crash point can only preserve more commits.
    EXPECT_GE(recovered, prev_recovered) << "offset " << off;
    prev_recovered = recovered;
  }
  // The last stride bucket must actually have preserved commits, or
  // the sweep silently degenerated.
  EXPECT_GT(prev_recovered, 0);
}

TEST(CrashRecovery, CrashAfterCheckpointReplaysOnlyTail) {
  std::string dir = FreshDir("post_checkpoint");
  {
    auto opened = Database::Open(dir);
    ASSERT_TRUE(opened.ok());
    Database db = std::move(*opened);
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE(
          db.Execute("CREATE (:K {i: " + std::to_string(i) + "})").ok());
    }
    ASSERT_TRUE(db.Checkpoint().ok());
  }
  // Crash while appending the first post-checkpoint commit: recovery
  // loads the checkpoint and finds a torn single-frame log.
  pid_t pid = fork();
  if (pid == 0) {
    setenv("GQLITE_WAL_CRASH_AFTER_BYTES", "20", /*overwrite=*/1);
    auto opened = Database::Open(dir);
    if (!opened.ok()) _exit(1);
    (void)opened->Execute("CREATE (:K {i: 4})");
    _exit(1);  // unreachable: the append crosses offset 20
  }
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), kCrashExit);

  EXPECT_EQ(VerifyRecoveredPrefix(dir), 4);
}

// A commit whose WAL append fails mid-frame — here the file-size rlimit
// cuts the write short, the same partial-write shape as ENOSPC — must
// not strand torn bytes in the log: the failed commit rolls back, later
// commits land after a clean prefix, and reopening recovers exactly the
// acknowledged ones (nothing from after the first I/O error is lost).
TEST(CrashRecovery, FailedAppendKeepsLogAppendable) {
  std::string dir = FreshDir("failed_append");
  pid_t pid = fork();
  if (pid == 0) {
    // A write past the limit raises SIGXFSZ (default: kill the
    // process); ignore it so write() fails with EFBIG like any other
    // I/O error.
    signal(SIGXFSZ, SIG_IGN);
    auto opened = Database::Open(dir);
    if (!opened.ok()) _exit(10);
    Database db = std::move(*opened);
    if (!db.Execute("CREATE (:K {i: 0})").ok()) _exit(11);
    struct rlimit lim;
    if (getrlimit(RLIMIT_FSIZE, &lim) != 0) _exit(12);
    const struct rlimit full = lim;
    // Allow 6 more log bytes: the next frame tears mid-write.
    lim.rlim_cur =
        static_cast<rlim_t>(fs::file_size(dir + "/wal.log")) + 6;
    if (setrlimit(RLIMIT_FSIZE, &lim) != 0) _exit(13);
    if (db.Execute("CREATE (:Torn {pad: 'xxxxxxxxxxxxxxxxxxxxxxxx'})")
            .ok()) {
      _exit(14);  // the torn append must fail the commit
    }
    if (setrlimit(RLIMIT_FSIZE, &full) != 0) _exit(15);
    if (!db.Execute("CREATE (:K {i: 1})").ok()) _exit(16);
    _exit(0);
  }
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  ASSERT_EQ(WEXITSTATUS(status), 0);

  auto opened = Database::Open(dir);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  Database db = std::move(*opened);
  auto k = db.Execute("MATCH (n:K) RETURN n.i AS i ORDER BY i");
  ASSERT_TRUE(k.ok()) << k.status().ToString();
  ASSERT_EQ(k->table.rows().size(), 2u);
  EXPECT_EQ(k->table.rows()[0][0].AsInt(), 0);
  EXPECT_EQ(k->table.rows()[1][0].AsInt(), 1);
  auto torn = db.Execute("MATCH (n:Torn) RETURN count(n) AS c");
  ASSERT_TRUE(torn.ok()) << torn.status().ToString();
  EXPECT_EQ(torn->table.rows()[0][0].AsInt(), 0);
}

}  // namespace
}  // namespace gqlite
