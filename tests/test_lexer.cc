#include <gtest/gtest.h>

#include <cstdint>

#include "src/frontend/lexer.h"

namespace gqlite {
namespace {

std::vector<Token> Lex(std::string_view s) {
  auto r = Tokenize(s);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() ? std::move(r).value() : std::vector<Token>{};
}

TEST(Lexer, EmptyInput) {
  auto toks = Lex("");
  ASSERT_EQ(toks.size(), 1u);
  EXPECT_EQ(toks[0].kind, TokenKind::kEof);
}

TEST(Lexer, IdentifiersAndKeywordsAreJustIdentifiers) {
  auto toks = Lex("MATCH match Person _x a1");
  ASSERT_EQ(toks.size(), 6u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(toks[i].kind, TokenKind::kIdentifier);
  EXPECT_EQ(toks[0].text, "MATCH");
  EXPECT_EQ(toks[1].text, "match");
  EXPECT_EQ(toks[3].text, "_x");
}

TEST(Lexer, BacktickIdentifier) {
  auto toks = Lex("`weird name!`");
  ASSERT_GE(toks.size(), 1u);
  EXPECT_EQ(toks[0].kind, TokenKind::kIdentifier);
  EXPECT_EQ(toks[0].text, "weird name!");
  EXPECT_FALSE(Tokenize("`unterminated").ok());
  EXPECT_FALSE(Tokenize("``").ok());
}

TEST(Lexer, Numbers) {
  auto toks = Lex("42 3.14 .5 6.022e23 1e3 7");
  EXPECT_EQ(toks[0].kind, TokenKind::kInteger);
  EXPECT_EQ(toks[0].int_value, 42);
  EXPECT_EQ(toks[1].kind, TokenKind::kFloat);
  EXPECT_DOUBLE_EQ(toks[1].float_value, 3.14);
  EXPECT_EQ(toks[2].kind, TokenKind::kFloat);
  EXPECT_DOUBLE_EQ(toks[2].float_value, 0.5);
  EXPECT_EQ(toks[3].kind, TokenKind::kFloat);
  EXPECT_EQ(toks[4].kind, TokenKind::kFloat);
  EXPECT_EQ(toks[5].kind, TokenKind::kInteger);
}

TEST(Lexer, RangeDotsDontEatNumbers) {
  // `1..2` must lex as integer, dotdot, integer (variable-length ranges).
  auto toks = Lex("*1..2");
  ASSERT_GE(toks.size(), 4u);
  EXPECT_EQ(toks[0].kind, TokenKind::kStar);
  EXPECT_EQ(toks[1].kind, TokenKind::kInteger);
  EXPECT_EQ(toks[2].kind, TokenKind::kDotDot);
  EXPECT_EQ(toks[3].kind, TokenKind::kInteger);
}

TEST(Lexer, PropertyDot) {
  auto toks = Lex("r.name");
  ASSERT_GE(toks.size(), 3u);
  EXPECT_EQ(toks[0].kind, TokenKind::kIdentifier);
  EXPECT_EQ(toks[1].kind, TokenKind::kDot);
  EXPECT_EQ(toks[2].kind, TokenKind::kIdentifier);
}

TEST(Lexer, Strings) {
  auto toks = Lex("'abc' \"def\" 'it\\'s' 'tab\\there'");
  EXPECT_EQ(toks[0].text, "abc");
  EXPECT_EQ(toks[1].text, "def");
  EXPECT_EQ(toks[2].text, "it's");
  EXPECT_EQ(toks[3].text, "tab\there");
  EXPECT_FALSE(Tokenize("'unterminated").ok());
  EXPECT_FALSE(Tokenize("'bad\\q'").ok());
}

TEST(Lexer, Parameters) {
  auto toks = Lex("$duration $x_1");
  EXPECT_EQ(toks[0].kind, TokenKind::kParameter);
  EXPECT_EQ(toks[0].text, "duration");
  EXPECT_EQ(toks[1].text, "x_1");
  EXPECT_FALSE(Tokenize("$ ").ok());
}

TEST(Lexer, OperatorsAndPunct) {
  auto toks = Lex("<> <= >= < > = =~ + - * / % ^ += .. | ; ,");
  std::vector<TokenKind> expect = {
      TokenKind::kNeq,    TokenKind::kLe,     TokenKind::kGe,
      TokenKind::kLt,     TokenKind::kGt,     TokenKind::kEq,
      TokenKind::kRegexMatch, TokenKind::kPlus,   TokenKind::kMinus,
      TokenKind::kStar,   TokenKind::kSlash,  TokenKind::kPercent,
      TokenKind::kCaret,  TokenKind::kPlusEq, TokenKind::kDotDot,
      TokenKind::kPipe,   TokenKind::kSemicolon, TokenKind::kComma,
  };
  ASSERT_GE(toks.size(), expect.size());
  for (size_t i = 0; i < expect.size(); ++i) {
    EXPECT_EQ(toks[i].kind, expect[i]) << "token " << i;
  }
}

TEST(Lexer, PatternPunctuation) {
  auto toks = Lex("(a)-[r:KNOWS*1..2]->(b)");
  std::vector<TokenKind> expect = {
      TokenKind::kLParen,   TokenKind::kIdentifier, TokenKind::kRParen,
      TokenKind::kMinus,    TokenKind::kLBracket,   TokenKind::kIdentifier,
      TokenKind::kColon,    TokenKind::kIdentifier, TokenKind::kStar,
      TokenKind::kInteger,  TokenKind::kDotDot,     TokenKind::kInteger,
      TokenKind::kRBracket, TokenKind::kMinus,      TokenKind::kGt,
      TokenKind::kLParen,   TokenKind::kIdentifier, TokenKind::kRParen,
      TokenKind::kEof,
  };
  ASSERT_EQ(toks.size(), expect.size());
  for (size_t i = 0; i < expect.size(); ++i) {
    EXPECT_EQ(toks[i].kind, expect[i]) << "token " << i;
  }
}

TEST(Lexer, Comments) {
  auto toks = Lex("a // line comment\n b /* block\ncomment */ c");
  ASSERT_EQ(toks.size(), 4u);
  EXPECT_EQ(toks[0].text, "a");
  EXPECT_EQ(toks[1].text, "b");
  EXPECT_EQ(toks[2].text, "c");
  EXPECT_FALSE(Tokenize("/* unterminated").ok());
}

TEST(Lexer, LineColTracking) {
  auto toks = Lex("a\n  b");
  EXPECT_EQ(toks[0].line, 1);
  EXPECT_EQ(toks[0].col, 1);
  EXPECT_EQ(toks[1].line, 2);
  EXPECT_EQ(toks[1].col, 3);
}

TEST(Lexer, BangEqAlias) {
  auto toks = Lex("a != b");
  EXPECT_EQ(toks[1].kind, TokenKind::kNeq);
  EXPECT_FALSE(Tokenize("a ! b").ok());
}

TEST(Lexer, Int64BoundaryLiterals) {
  auto toks = Lex("9223372036854775807");
  ASSERT_GE(toks.size(), 1u);
  EXPECT_EQ(toks[0].kind, TokenKind::kInteger);
  EXPECT_EQ(toks[0].int_value, INT64_MAX);
  EXPECT_FALSE(toks[0].int_is_min_magnitude);

  // |INT64_MIN| lexes (flagged) so `-9223372036854775808` can parse; one
  // more than that is unconditionally out of range.
  toks = Lex("9223372036854775808");
  ASSERT_GE(toks.size(), 1u);
  EXPECT_EQ(toks[0].kind, TokenKind::kInteger);
  EXPECT_EQ(toks[0].int_value, INT64_MIN);
  EXPECT_TRUE(toks[0].int_is_min_magnitude);

  EXPECT_FALSE(Tokenize("9223372036854775809").ok());
  EXPECT_FALSE(Tokenize("99999999999999999999999999").ok());
}

TEST(Lexer, MinusThenIntegerStaysTwoTokens) {
  // The sign is the parser's business: `-5` lexes as minus, integer.
  auto toks = Lex("-9223372036854775808");
  ASSERT_GE(toks.size(), 2u);
  EXPECT_EQ(toks[0].kind, TokenKind::kMinus);
  EXPECT_EQ(toks[1].kind, TokenKind::kInteger);
  EXPECT_TRUE(toks[1].int_is_min_magnitude);
}

}  // namespace
}  // namespace gqlite
