// Unit tests for the Volcano operators (§2 "Neo4j implementation") —
// exercised directly, below the planner: scans, Expand variants,
// variable-length expansion, Apply/OptionalApply, Filter, Unwind, Union,
// and PROFILE row counters.

#include <gtest/gtest.h>

#include "src/core/engine.h"
#include "src/frontend/parser.h"
#include "src/plan/operators.h"
#include "src/workload/generators.h"

namespace gqlite {
namespace {

class OperatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    a_ = g_.CreateNode({"A"}, {{"v", Value::Int(1)}});
    b_ = g_.CreateNode({"B"}, {{"v", Value::Int(2)}});
    c_ = g_.CreateNode({"B"}, {{"v", Value::Int(3)}});
    ab_ = g_.CreateRelationship(a_, b_, "T").value();
    ac_ = g_.CreateRelationship(a_, c_, "U").value();
    cb_ = g_.CreateRelationship(c_, b_, "T").value();
    ctx_.graph = &g_;
    ctx_.eval.graph = &g_;
    static ValueMap no_params;
    ctx_.eval.parameters = &no_params;
  }

  OperatorPtr Unit() {
    static const Table* unit = new Table(Table::Unit());
    return std::make_unique<ArgumentOp>(std::vector<std::string>{}, unit);
  }

  Table Drain(Operator* op, size_t batch_size = RowBatch::kDefaultCapacity) {
    EXPECT_TRUE(op->Open().ok());
    auto t = DrainPlan(op, batch_size);
    EXPECT_TRUE(t.ok()) << t.status().ToString();
    return t.ok() ? *t : Table();
  }

  PropertyGraph g_;
  NodeId a_, b_, c_;
  RelId ab_, ac_, cb_;
  ExecContext ctx_;
};

TEST_F(OperatorTest, AllNodesScan) {
  AllNodesScanOp scan(Unit(), &ctx_, "n");
  Table t = Drain(&scan);
  EXPECT_EQ(t.NumRows(), 3u);
  EXPECT_EQ(t.fields(), std::vector<std::string>{"n"});
  EXPECT_EQ(scan.rows_produced(), 3);
}

TEST_F(OperatorTest, AllNodesScanSkipsDeleted) {
  ASSERT_TRUE(g_.DeleteRelationship(ab_).ok());
  ASSERT_TRUE(g_.DeleteRelationship(ac_).ok());
  ASSERT_TRUE(g_.DeleteNode(a_).ok());
  AllNodesScanOp scan(Unit(), &ctx_, "n");
  EXPECT_EQ(Drain(&scan).NumRows(), 2u);
}

TEST_F(OperatorTest, NodeByLabelScan) {
  NodeByLabelScanOp scan(Unit(), &ctx_, "n", "B");
  Table t = Drain(&scan);
  EXPECT_EQ(t.NumRows(), 2u);
  NodeByLabelScanOp none(Unit(), &ctx_, "n", "Zzz");
  EXPECT_EQ(Drain(&none).NumRows(), 0u);
}

TEST_F(OperatorTest, ExpandAllDirections) {
  auto make_expand = [&](ast::Direction dir, const char* type) {
    auto scan = std::make_unique<AllNodesScanOp>(Unit(), &ctx_, "n");
    ExpandSpec spec;
    spec.from_col = 0;
    spec.rel_var = "r";
    spec.to_var = "m";
    spec.direction = dir;
    if (type != nullptr) spec.types = {type};
    return std::make_unique<ExpandOp>(std::move(scan), &ctx_, spec);
  };
  auto out = make_expand(ast::Direction::kRight, nullptr);
  EXPECT_EQ(Drain(out.get()).NumRows(), 3u);
  auto in = make_expand(ast::Direction::kLeft, nullptr);
  EXPECT_EQ(Drain(in.get()).NumRows(), 3u);
  auto both = make_expand(ast::Direction::kBoth, nullptr);
  EXPECT_EQ(Drain(both.get()).NumRows(), 6u);
  auto typed = make_expand(ast::Direction::kRight, "T");
  EXPECT_EQ(Drain(typed.get()).NumRows(), 2u);
}

TEST_F(OperatorTest, ExpandIntoChecksBoundTarget) {
  // Schema [n, m]: all pairs via two scans, then ExpandInto over T.
  auto scan1 = std::make_unique<AllNodesScanOp>(Unit(), &ctx_, "n");
  auto scan2 =
      std::make_unique<AllNodesScanOp>(std::move(scan1), &ctx_, "m");
  ExpandSpec spec;
  spec.from_col = 0;
  spec.to_col = 1;
  spec.rel_var = "r";
  spec.direction = ast::Direction::kRight;
  ExpandOp into(std::move(scan2), &ctx_, spec);
  Table t = Drain(&into);
  EXPECT_EQ(t.NumRows(), 3u);  // exactly the three edges
}

TEST_F(OperatorTest, ExpandUniquenessColumns) {
  // (a)-[r1]->(x)-[r2]->(y): r2 must not reuse r1.
  auto scan = std::make_unique<AllNodesScanOp>(Unit(), &ctx_, "n");
  ExpandSpec s1;
  s1.from_col = 0;
  s1.rel_var = "r1";
  s1.to_var = "x";
  s1.direction = ast::Direction::kBoth;
  auto e1 = std::make_unique<ExpandOp>(std::move(scan), &ctx_, s1);
  ExpandSpec s2;
  s2.from_col = 2;
  s2.rel_var = "r2";
  s2.to_var = "y";
  s2.direction = ast::Direction::kBoth;
  s2.uniqueness_cols = {1};  // r1's column
  auto e2 = std::make_unique<ExpandOp>(std::move(e1), &ctx_, s2);
  Table with_uniq = Drain(e2.get());
  // Without the uniqueness column the bounce-back paths appear too.
  auto scan_b = std::make_unique<AllNodesScanOp>(Unit(), &ctx_, "n");
  auto e1b = std::make_unique<ExpandOp>(std::move(scan_b), &ctx_, s1);
  ExpandSpec s2b = s2;
  s2b.uniqueness_cols.clear();
  auto e2b = std::make_unique<ExpandOp>(std::move(e1b), &ctx_, s2b);
  Table without = Drain(e2b.get());
  EXPECT_LT(with_uniq.NumRows(), without.NumRows());
}

TEST_F(OperatorTest, HashJoinExpandAgreesWithExpand) {
  auto scan = std::make_unique<AllNodesScanOp>(Unit(), &ctx_, "n");
  ExpandSpec spec;
  spec.from_col = 0;
  spec.rel_var = "r";
  spec.to_var = "m";
  spec.direction = ast::Direction::kBoth;
  auto adj = std::make_unique<ExpandOp>(std::move(scan), &ctx_, spec);
  Table t1 = Drain(adj.get());
  auto scan2 = std::make_unique<AllNodesScanOp>(Unit(), &ctx_, "n");
  auto hj = std::make_unique<HashJoinExpandOp>(std::move(scan2), &ctx_, spec);
  Table t2 = Drain(hj.get());
  EXPECT_TRUE(t1.SameBag(t2));
}

TEST_F(OperatorTest, VarLengthExpandLengths) {
  GraphPtr chain = workload::MakeChain(4);  // 3 rels
  ExecContext cctx;
  cctx.graph = chain.get();
  cctx.eval.graph = chain.get();
  auto scan = std::make_unique<AllNodesScanOp>(Unit(), &cctx, "n");
  ExpandSpec spec;
  spec.from_col = 0;
  spec.rel_var = "rs";
  spec.to_var = "m";
  spec.direction = ast::Direction::kRight;
  auto vle = std::make_unique<VarLengthExpandOp>(std::move(scan), &cctx,
                                                 spec, 1, 2);
  Table t = Drain(vle.get());
  EXPECT_EQ(t.NumRows(), 5u);  // 3 length-1 + 2 length-2
  auto scan0 = std::make_unique<AllNodesScanOp>(Unit(), &cctx, "n");
  auto vle0 = std::make_unique<VarLengthExpandOp>(std::move(scan0), &cctx,
                                                  spec, 0, 1);
  EXPECT_EQ(Drain(vle0.get()).NumRows(), 7u);  // 4 zero + 3 one
}

TEST_F(OperatorTest, FilterKeepsOnlyTrue) {
  auto scan = std::make_unique<AllNodesScanOp>(Unit(), &ctx_, "n");
  auto pred = ParseExpression("n.v > 1");
  ASSERT_TRUE(pred.ok());
  FilterOp filter(std::move(scan), &ctx_, pred->get());
  Table t = Drain(&filter);
  EXPECT_EQ(t.NumRows(), 2u);
}

TEST_F(OperatorTest, UnwindOperator) {
  auto expr = ParseExpression("[1, 2, 3]");
  ASSERT_TRUE(expr.ok());
  UnwindOp unwind(Unit(), &ctx_, expr->get(), "x");
  Table t = Drain(&unwind);
  EXPECT_EQ(t.NumRows(), 3u);
}

TEST_F(OperatorTest, ProfileCountersAfterExecution) {
  CypherEngine engine;
  ASSERT_TRUE(engine.Execute("CREATE (:A)-[:T]->(:B), (:A)").ok());
  auto profile = engine.Profile("MATCH (a:A)-[:T]->(b:B) RETURN b");
  ASSERT_TRUE(profile.ok()) << profile.status().ToString();
  EXPECT_NE(profile->find("rows:"), std::string::npos) << *profile;
  EXPECT_NE(profile->find("result: 1 rows"), std::string::npos) << *profile;
}

TEST_F(OperatorTest, ExplainTreeShapes) {
  CypherEngine engine;
  ASSERT_TRUE(engine.Execute("CREATE (:A)-[:T]->(:B)").ok());
  auto e1 = engine.Explain("MATCH (a:A) OPTIONAL MATCH (a)-[:T]->(b) "
                           "RETURN a, b");
  ASSERT_TRUE(e1.ok());
  EXPECT_NE(e1->find("OptionalApply"), std::string::npos) << *e1;
  auto e2 = engine.Explain(
      "MATCH (a:A) RETURN a AS n UNION MATCH (b:B) RETURN b AS n");
  ASSERT_TRUE(e2.ok());
  EXPECT_NE(e2->find("Union"), std::string::npos) << *e2;
  auto e3 = engine.Explain("MATCH (a)-[:T*1..2]->(b) RETURN b");
  ASSERT_TRUE(e3.ok());
  EXPECT_NE(e3->find("VarLengthExpand"), std::string::npos) << *e3;
  auto e4 = engine.Explain("MATCH p = (a)-[:T]->(b) RETURN length(p)");
  ASSERT_TRUE(e4.ok());
  EXPECT_NE(e4->find("PatternMatch(fallback)"), std::string::npos) << *e4;
}

TEST_F(OperatorTest, RowBatchSelectionComposes) {
  RowBatch b(8);
  for (int i = 0; i < 6; ++i) b.Append({Value::Int(i)});
  EXPECT_EQ(b.size(), 6u);
  b.Select({0, 2, 3, 5});  // live values 0, 2, 3, 5
  ASSERT_EQ(b.size(), 4u);
  EXPECT_EQ(b.row(1)[0].AsInt(), 2);
  b.Select({1, 3});  // live positions of the previous view → values 2, 5
  ASSERT_EQ(b.size(), 2u);
  EXPECT_EQ(b.row(0)[0].AsInt(), 2);
  EXPECT_EQ(b.row(1)[0].AsInt(), 5);
  b.Clear();
  EXPECT_EQ(b.size(), 0u);
  b.Append({Value::Int(7)});  // slot reuse after Clear keeps rows dense
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(b.row(0)[0].AsInt(), 7);
}

TEST_F(OperatorTest, BatchBoundariesDoNotChangeResults) {
  // The same pipeline drained at awkward morsel sizes (1, 2, 3, 7) must
  // produce the same bag as the default morsel — catches off-by-one
  // resume bugs at batch boundaries.
  auto make = [&]() {
    auto scan = std::make_unique<AllNodesScanOp>(Unit(), &ctx_, "n");
    ExpandSpec spec;
    spec.from_col = 0;
    spec.rel_var = "r";
    spec.to_var = "m";
    spec.direction = ast::Direction::kBoth;
    return std::make_unique<ExpandOp>(std::move(scan), &ctx_, spec);
  };
  auto ref_op = make();
  Table reference = Drain(ref_op.get());
  EXPECT_EQ(reference.NumRows(), 6u);
  for (size_t bs : {1u, 2u, 3u, 7u}) {
    auto op = make();
    Table t = Drain(op.get(), bs);
    EXPECT_TRUE(reference.SameBag(t)) << "batch_size=" << bs;
  }
}

TEST_F(OperatorTest, FilterUsesSelectionWithoutCopying) {
  auto scan = std::make_unique<AllNodesScanOp>(Unit(), &ctx_, "n");
  auto pred = ParseExpression("n.v > 1");
  ASSERT_TRUE(pred.ok());
  FilterOp filter(std::move(scan), &ctx_, pred->get());
  ASSERT_TRUE(filter.Open().ok());
  RowBatch batch(16);
  auto ok = filter.NextBatch(&batch);
  ASSERT_TRUE(ok.ok());
  ASSERT_TRUE(*ok);
  // 3 nodes scanned into the morsel, 2 survive through the selection.
  EXPECT_EQ(batch.size(), 2u);
  EXPECT_EQ(filter.rows_produced(), 2);
  EXPECT_EQ(filter.batches_produced(), 1);
}

TEST_F(OperatorTest, VarLengthBatchBoundaries) {
  GraphPtr chain = workload::MakeChain(6);
  ExecContext cctx;
  cctx.graph = chain.get();
  cctx.eval.graph = chain.get();
  auto make = [&]() {
    auto scan = std::make_unique<AllNodesScanOp>(Unit(), &cctx, "n");
    ExpandSpec spec;
    spec.from_col = 0;
    spec.rel_var = "rs";
    spec.to_var = "m";
    spec.direction = ast::Direction::kRight;
    return std::make_unique<VarLengthExpandOp>(std::move(scan), &cctx,
                                               spec, 0, 3);
  };
  auto ref_op = make();
  Table reference = Drain(ref_op.get());
  for (size_t bs : {1u, 2u, 5u}) {
    auto op = make();
    EXPECT_TRUE(reference.SameBag(Drain(op.get(), bs))) << "batch_size=" << bs;
  }
}

TEST_F(OperatorTest, UnionOpDeduplicates) {
  std::vector<OperatorPtr> parts;
  parts.push_back(std::make_unique<AllNodesScanOp>(Unit(), &ctx_, "n"));
  parts.push_back(std::make_unique<AllNodesScanOp>(Unit(), &ctx_, "n"));
  UnionOp u(std::move(parts), /*all=*/false, {"n"});
  Table t = Drain(&u);
  EXPECT_EQ(t.NumRows(), 3u);  // deduplicated
  std::vector<OperatorPtr> parts2;
  parts2.push_back(std::make_unique<AllNodesScanOp>(Unit(), &ctx_, "n"));
  parts2.push_back(std::make_unique<AllNodesScanOp>(Unit(), &ctx_, "n"));
  UnionOp u2(std::move(parts2), /*all=*/true, {"n"});
  EXPECT_EQ(Drain(&u2).NumRows(), 6u);
}

}  // namespace
}  // namespace gqlite
