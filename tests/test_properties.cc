// Property-based tests over randomized values and queries:
//  * consistency laws between equality, equivalence, orderability and
//    hashing (value_compare.h);
//  * parser robustness on mangled query text (errors, never crashes);
//  * dump/reload idempotence on random graphs.

#include <gtest/gtest.h>

#include <random>

#include "src/core/engine.h"
#include "src/frontend/parser.h"
#include "src/value/value_compare.h"

namespace gqlite {
namespace {

/// Random value generator over all non-entity kinds, depth-bounded.
Value RandomValue(std::mt19937_64& rng, int depth = 0) {
  std::uniform_int_distribution<int> kind(0, depth >= 2 ? 6 : 8);
  switch (kind(rng)) {
    case 0:
      return Value::Null();
    case 1:
      return Value::Bool(rng() % 2 == 0);
    case 2:
      return Value::Int(static_cast<int64_t>(rng() % 21) - 10);
    case 3: {
      std::uniform_real_distribution<double> d(-5, 5);
      return Value::Float(d(rng));
    }
    case 4: {
      static const char* kStrings[] = {"", "a", "b", "ab", "z"};
      return Value::String(kStrings[rng() % 5]);
    }
    case 5:
      return Value::Temporal(Date{static_cast<int64_t>(rng() % 1000)});
    case 6:
      return Value::Temporal(
          Duration::Make(0, static_cast<int64_t>(rng() % 30), 0, 0));
    case 7: {
      ValueList items;
      size_t n = rng() % 4;
      for (size_t i = 0; i < n; ++i) {
        items.push_back(RandomValue(rng, depth + 1));
      }
      return Value::MakeList(std::move(items));
    }
    default: {
      ValueMap m;
      size_t n = rng() % 3;
      static const char* kKeys[] = {"k1", "k2", "k3"};
      for (size_t i = 0; i < n; ++i) {
        m[kKeys[i]] = RandomValue(rng, depth + 1);
      }
      return Value::MakeMap(std::move(m));
    }
  }
}

TEST(ValueLaws, EqualityImpliesEquivalenceImpliesOrderZero) {
  std::mt19937_64 rng(7);
  for (int i = 0; i < 3000; ++i) {
    Value a = RandomValue(rng);
    Value b = RandomValue(rng);
    if (ValueEquals(a, b) == Tri::kTrue) {
      EXPECT_TRUE(ValueEquivalent(a, b))
          << a.ToString() << " vs " << b.ToString();
    }
    if (ValueEquivalent(a, b)) {
      EXPECT_EQ(ValueOrder(a, b), 0)
          << a.ToString() << " vs " << b.ToString();
      EXPECT_EQ(ValueHash(a), ValueHash(b))
          << a.ToString() << " vs " << b.ToString();
    }
    // Reflexivity of equivalence (covers NaN and null).
    EXPECT_TRUE(ValueEquivalent(a, a)) << a.ToString();
    EXPECT_EQ(ValueOrder(a, a), 0) << a.ToString();
  }
}

TEST(ValueLaws, OrderabilityIsTotalAndAntisymmetric) {
  std::mt19937_64 rng(99);
  std::vector<Value> vals;
  for (int i = 0; i < 40; ++i) vals.push_back(RandomValue(rng));
  for (const Value& a : vals) {
    for (const Value& b : vals) {
      int ab = ValueOrder(a, b);
      int ba = ValueOrder(b, a);
      EXPECT_EQ((ab > 0) - (ab < 0), -((ba > 0) - (ba < 0)));
      for (const Value& c : vals) {
        if (ValueOrder(a, b) <= 0 && ValueOrder(b, c) <= 0) {
          EXPECT_LE(ValueOrder(a, c), 0)
              << a.ToString() << " / " << b.ToString() << " / "
              << c.ToString();
        }
      }
    }
  }
}

TEST(ValueLaws, EqualsIsSymmetricIn3VL) {
  std::mt19937_64 rng(123);
  for (int i = 0; i < 2000; ++i) {
    Value a = RandomValue(rng);
    Value b = RandomValue(rng);
    EXPECT_EQ(ValueEquals(a, b), ValueEquals(b, a))
        << a.ToString() << " vs " << b.ToString();
  }
}

TEST(ParserRobustness, MangledQueriesErrorCleanly) {
  // Mutate valid queries by deleting/duplicating random characters: the
  // parser must always return (status or AST), never crash or hang.
  const std::string base =
      "MATCH (a:Person {name: 'x'})-[r:KNOWS*1..3]->(b) WHERE a.age > 30 "
      "WITH a, count(b) AS c RETURN a.name, c ORDER BY c DESC LIMIT 5";
  std::mt19937_64 rng(555);
  int parsed_ok = 0;
  for (int i = 0; i < 500; ++i) {
    std::string q = base;
    int edits = 1 + static_cast<int>(rng() % 4);
    for (int e = 0; e < edits; ++e) {
      size_t pos = rng() % q.size();
      switch (rng() % 3) {
        case 0:
          q.erase(pos, 1);
          break;
        case 1:
          q.insert(pos, 1, q[rng() % q.size()]);
          break;
        default:
          q[pos] = static_cast<char>('!' + rng() % 90);
          break;
      }
    }
    auto r = ParseQuery(q);
    if (r.ok()) ++parsed_ok;  // some mutations stay valid — fine
  }
  // Sanity: mutations usually break the query.
  EXPECT_LT(parsed_ok, 400);
}

TEST(ParserRobustness, GarbageInputs) {
  const char* garbage[] = {
      "", ";;;", "(((((", ")]}>", "MATCH MATCH MATCH", "RETURN",
      "'unterminated", "MATCH (a RETURN", "1 2 3", "* * *",
      "$ $ $", "-[]->", "WHERE TRUE", "UNION UNION",
      "MATCH (a)-[*..-1]->(b) RETURN a",
  };
  for (const char* q : garbage) {
    auto r = ParseQuery(q);
    EXPECT_FALSE(r.ok()) << q;
    EXPECT_FALSE(r.status().message().empty());
  }
}

TEST(EngineRobustness, RandomQuerySequencesNeverCrash) {
  // Replay a scripted mix of valid and invalid operations; the engine
  // must stay consistent (every error is a clean Status).
  CypherEngine engine;
  const char* script[] = {
      "CREATE (:A {v: 1})-[:T]->(:B {v: 2})",
      "MATCH (a) RETURN bogus",                    // semantic error
      "MATCH (a:A) SET a.v = a.v + 1",
      "MATCH (a)-[r]->(b) DELETE r",
      "MATCH (a)-[r]->(b) DELETE r",               // nothing left: no-op
      "MERGE (:A {v: 2})",
      "MATCH (a) DETACH DELETE a",
      "MATCH (a) RETURN count(*) AS c",
      "RETURN 1 / 0",                              // evaluation error
      "CREATE (x:C)-[:U]->(x)",
      "MATCH (x)-[*0..]->(x) RETURN count(*) AS c",
  };
  int errors = 0;
  for (const char* q : script) {
    auto r = engine.Execute(q);
    if (!r.ok()) ++errors;
  }
  // Exactly the semantic error and the division by zero; the repeated
  // DELETE simply matches nothing.
  EXPECT_EQ(errors, 2);
  auto final_count = engine.Execute("MATCH (n) RETURN count(*) AS c");
  ASSERT_TRUE(final_count.ok());
  EXPECT_EQ(final_count->table.rows()[0][0].AsInt(), 1);  // the :C node
}

}  // namespace
}  // namespace gqlite
