// TCK-style acceptance scenarios (the openCypher project publishes a
// Technology Compatibility Kit, §5; these tests follow its
// given-setup/when-query/then-rows style). Every scenario runs through
// BOTH executors — the reference interpreter and the Volcano runtime —
// so the suite doubles as a parity harness on handwritten cases.
//
// Expected rows are written as formatted cell values (FormatValue), with
// row order ignored unless the query has ORDER BY (the harness sorts
// both sides canonically).

#include <gtest/gtest.h>

#include <cstdlib>

#include "src/core/engine.h"
#include "src/plan/runtime.h"

namespace gqlite {
namespace {

struct Scenario {
  const char* name;
  std::vector<const char*> setup;
  const char* query;
  std::vector<std::vector<const char*>> expected;  // formatted cells
  bool ordered = false;
};

std::vector<Scenario> Scenarios() {
  return {
      // ---- MATCH basics ----------------------------------------------------
      {"match all nodes on empty graph", {}, "MATCH (n) RETURN n", {}},
      {"match returns every node",
       {"CREATE (:A), (:B)"},
       "MATCH (n) RETURN count(*) AS c",
       {{"2"}}},
      {"label filters",
       {"CREATE (:A {v: 1}), (:B {v: 2}), (:A:B {v: 3})"},
       "MATCH (n:A) RETURN n.v AS v ORDER BY v",
       {{"1"}, {"3"}},
       true},
      {"property map in node pattern",
       {"CREATE ({v: 1, w: 1}), ({v: 1, w: 2})"},
       "MATCH (n {v: 1, w: 2}) RETURN n.w AS w",
       {{"2"}}},
      {"anonymous nodes do not join",
       {"CREATE (:A)-[:T]->(:B), (:A)-[:T]->(:B)"},
       "MATCH ()-[:T]->() RETURN count(*) AS c",
       {{"2"}}},
      {"direction matters",
       {"CREATE (a:A)-[:T]->(b:B)"},
       "MATCH (b:B)-[:T]->(a:A) RETURN count(*) AS c",
       {{"0"}}},
      {"undirected matches both ways",
       {"CREATE (a:A)-[:T]->(b:B)"},
       "MATCH (x)-[:T]-(y) RETURN count(*) AS c",
       {{"2"}}},
      {"multiple types",
       {"CREATE (a)-[:X]->(b), (a)-[:Y]->(b), (a)-[:Z]->(b)"},
       "MATCH ()-[r:X|Y]->() RETURN count(*) AS c",
       {{"2"}}},
      {"pattern tuple is a join",
       {"CREATE (a:A)-[:T]->(b:B), (b)-[:U]->(c:C)"},
       "MATCH (a:A)-[:T]->(m), (m)-[:U]->(c:C) RETURN count(*) AS c",
       {{"1"}}},
      {"relationship variable reuse joins",
       {"CREATE (a:A)-[:T {w: 1}]->(b:B)"},
       "MATCH (a)-[r]->(b) MATCH (x)-[r]->(y) RETURN count(*) AS c",
       {{"1"}}},

      // ---- Variable length --------------------------------------------------
      {"star means one or more",
       {"CREATE (a:S)-[:T]->(b)-[:T]->(c)"},
       "MATCH (a:S)-[:T*]->(x) RETURN count(*) AS c",
       {{"2"}}},
      {"zero length includes self",
       {"CREATE (a:S)-[:T]->(b)"},
       "MATCH (a:S)-[:T*0..1]->(x) RETURN count(*) AS c",
       {{"2"}}},
      {"exact length",
       {"CREATE (a:S)-[:T]->(b)-[:T]->(c)-[:T]->(d)"},
       "MATCH (:S)-[:T*3]->(x) RETURN count(*) AS c",
       {{"1"}}},
      {"variable length respects rel uniqueness",
       {"CREATE (a)-[:T]->(b), (b)-[:T]->(a)"},
       "MATCH (x)-[:T*4]->(y) RETURN count(*) AS c",
       {{"0"}}},  // only 2 rels exist; a length-4 trail is impossible
      {"size of relationship list",
       {"CREATE (a:S)-[:T]->(b)-[:T]->(c)"},
       "MATCH (:S)-[rs:T*1..2]->() RETURN size(rs) AS n ORDER BY n",
       {{"1"}, {"2"}},
       true},

      // A relationship-pattern property constraint must only be evaluated
      // for candidate relationships — a row with none never evaluates the
      // (here: overflowing) expression. Guards the batched runtime's
      // lazily-hoisted constraint evaluation.
      {"rel property constraint unevaluated without candidates",
       {"CREATE (:P {big: 9223372036854775807})"},
       "MATCH (a:P)-[:NOPE {w: a.big + a.big}]->(b) RETURN b",
       {}},
      {"varlength property constraint unevaluated without candidates",
       {"CREATE (:P {big: 9223372036854775807})"},
       "MATCH (a:P)-[:NOPE*1..2 {w: a.big + a.big}]->(b) RETURN b",
       {}},
      // Keys short-circuit left to right per candidate: when every
      // candidate fails an earlier key, a later (erroring) expression is
      // never evaluated.
      {"rel property constraint keys short-circuit",
       {"CREATE (:P {big: 9223372036854775807})-[:T {ok: 1}]->(:Q)"},
       "MATCH (a:P)-[:T {ok: 2, w: a.big + a.big}]->(b) RETURN b",
       {}},

      // ---- OPTIONAL MATCH ---------------------------------------------------
      {"optional match pads with null",
       {"CREATE (:A)"},
       "MATCH (a:A) OPTIONAL MATCH (a)-[:T]->(b) RETURN b",
       {{"null"}}},
      {"optional match keeps matches",
       {"CREATE (:A)-[:T]->(:B {v: 7})"},
       "MATCH (a:A) OPTIONAL MATCH (a)-[:T]->(b) RETURN b.v AS v",
       {{"7"}}},
      {"where inside optional decides padding",
       {"CREATE (:A)-[:T]->(:B {v: 1})"},
       "MATCH (a:A) OPTIONAL MATCH (a)-[:T]->(b) WHERE b.v > 5 RETURN b",
       {{"null"}}},
      {"optional then aggregate counts zero",
       {"CREATE (:A)"},
       "MATCH (a:A) OPTIONAL MATCH (a)-[:T]->(b) RETURN count(b) AS c",
       {{"0"}}},

      // ---- WHERE and null handling ------------------------------------------
      {"where drops null comparisons",
       {"CREATE ({v: 1}), ({v: 2}), ({w: 3})"},
       "MATCH (n) WHERE n.v > 1 RETURN count(*) AS c",
       {{"1"}}},
      {"is null predicate",
       {"CREATE ({v: 1}), ({w: 1})"},
       "MATCH (n) WHERE n.v IS NULL RETURN count(*) AS c",
       {{"1"}}},
      {"label predicate in where",
       {"CREATE (:A), (:B), (:A:B)"},
       "MATCH (n) WHERE n:A AND NOT n:B RETURN count(*) AS c",
       {{"1"}}},
      {"pattern predicate in where",
       {"CREATE (:A)-[:T]->(), (:A)"},
       "MATCH (a:A) WHERE (a)-[:T]->() RETURN count(*) AS c",
       {{"1"}}},
      {"negated pattern predicate",
       {"CREATE (:A)-[:T]->(), (:A)"},
       "MATCH (a:A) WHERE NOT (a)-[:T]->() RETURN count(*) AS c",
       {{"1"}}},
      {"in list with nulls",
       {"CREATE ({v: 1}), ({v: 2})"},
       "MATCH (n) WHERE n.v IN [1, null] RETURN count(*) AS c",
       {{"1"}}},

      // ---- WITH pipeline ----------------------------------------------------
      {"with renames and filters",
       {"CREATE ({v: 1}), ({v: 2}), ({v: 3})"},
       "MATCH (n) WITH n.v AS v WHERE v >= 2 RETURN sum(v) AS s",
       {{"5"}}},
      {"with distinct",
       {"CREATE ({v: 1}), ({v: 1}), ({v: 2})"},
       "MATCH (n) WITH DISTINCT n.v AS v RETURN count(*) AS c",
       {{"2"}}},
      {"with limit then expand",
       {"CREATE (:A {v: 1})-[:T]->(:B), (:A {v: 2})-[:T]->(:B)"},
       "MATCH (a:A) WITH a ORDER BY a.v LIMIT 1 MATCH (a)-[:T]->(b) "
       "RETURN count(*) AS c",
       {{"1"}}},
      {"aggregate then continue",
       {"CREATE ({v: 1}), ({v: 2})"},
       "MATCH (n) WITH count(*) AS n1 MATCH (m) RETURN n1 + count(m) AS t",
       {{"4"}}},

      // ---- RETURN details ----------------------------------------------------
      {"return expression columns get derived names",
       {"CREATE ({v: 41})"},
       "MATCH (n) RETURN n.v + 1",
       {{"42"}}},
      {"return distinct rows",
       {"CREATE ({v: 1}), ({v: 1})"},
       "MATCH (n) RETURN DISTINCT n.v AS v",
       {{"1"}}},
      {"order by with nulls last ascending",
       {"CREATE ({v: 2}), ({v: 1}), ({w: 0})"},
       "MATCH (n) RETURN n.v AS v ORDER BY v",
       {{"1"}, {"2"}, {"null"}},
       true},
      {"skip and limit window",
       {"CREATE ({v: 1}), ({v: 2}), ({v: 3}), ({v: 4})"},
       "MATCH (n) RETURN n.v AS v ORDER BY v SKIP 1 LIMIT 2",
       {{"2"}, {"3"}},
       true},

      // ---- UNWIND ------------------------------------------------------------
      {"unwind literal list", {}, "UNWIND [1, 2, 3] AS x RETURN x ORDER BY x",
       {{"1"}, {"2"}, {"3"}},
       true},
      {"unwind empty list gives no rows",
       {},
       "UNWIND [] AS x RETURN x",
       {}},
      {"unwind range",
       {},
       "UNWIND range(1, 3) AS x RETURN sum(x) AS s",
       {{"6"}}},
      {"unwind collected list round trip",
       {"CREATE ({v: 1}), ({v: 2})"},
       "MATCH (n) WITH collect(n.v) AS vs UNWIND vs AS v RETURN v ORDER BY v",
       {{"1"}, {"2"}},
       true},

      // ---- UNION -------------------------------------------------------------
      {"union deduplicates",
       {"CREATE (:A {v: 1}), (:B {v: 1})"},
       "MATCH (a:A) RETURN a.v AS v UNION MATCH (b:B) RETURN b.v AS v",
       {{"1"}}},
      {"union all keeps duplicates",
       {"CREATE (:A {v: 1}), (:B {v: 1})"},
       "MATCH (a:A) RETURN a.v AS v UNION ALL MATCH (b:B) RETURN b.v AS v",
       {{"1"}, {"1"}}},

      // ---- Expressions in query context ---------------------------------------
      {"case in return",
       {"CREATE ({v: 1}), ({v: 2})"},
       "MATCH (n) RETURN CASE WHEN n.v = 1 THEN 'one' ELSE 'more' END AS w "
       "ORDER BY w",
       {{"'more'"}, {"'one'"}},
       true},
      {"list comprehension over collect",
       {"CREATE ({v: 1}), ({v: 2}), ({v: 3})"},
       "MATCH (n) WITH collect(n.v) AS vs "
       "RETURN [x IN vs WHERE x > 1 | x * 2] AS doubled",
       {{"[4, 6]"}}},
      {"path functions",
       {"CREATE (:S {v: 1})-[:T {w: 9}]->({v: 2})"},
       "MATCH p = (:S)-[:T]->() RETURN length(p) AS len, "
       "size(nodes(p)) AS ns, size(relationships(p)) AS rs",
       {{"1", "2", "1"}}},
      {"labels and type functions",
       {"CREATE (:A:B)-[:REL]->()"},
       "MATCH (a:A)-[r]->() RETURN size(labels(a)) AS nl, type(r) AS t",
       {{"2", "'REL'"}}},
      {"coalesce over missing property",
       {"CREATE ({v: 1}), ({w: 2})"},
       "MATCH (n) RETURN coalesce(n.v, -1) AS v ORDER BY v",
       {{"-1"}, {"1"}},
       true},

      // ---- Self loops & cycles -------------------------------------------------
      {"self loop matches once each direction",
       {"CREATE (a:L), (a)-[:T]->(a)"},
       "MATCH (x:L)-[:T]-(y) RETURN count(*) AS c",
       {{"1"}}},
      {"two node cycle",
       {"CREATE (a)-[:T]->(b), (b)-[:T]->(a)"},
       "MATCH (x)-[:T]->(y)-[:T]->(x) RETURN count(*) AS c",
       {{"2"}}},

      // ---- Temporal --------------------------------------------------------------
      {"temporal ordering",
       {"CREATE ({d: date('2018-06-10')}), ({d: date('2018-01-01')})"},
       "MATCH (n) RETURN n.d AS d ORDER BY d LIMIT 1",
       {{"2018-01-01"}},
       true},
      {"duration components in query",
       {},
       "RETURN duration('P1Y6M3DT12H').months AS m, "
       "duration('P1Y6M3DT12H').days AS d",
       {{"18", "3"}}},

      // ---- Second batch: interactions & edge cases ------------------------------
      {"two optional matches stack nulls",
       {"CREATE (:A)"},
       "MATCH (a:A) OPTIONAL MATCH (a)-[:X]->(x) "
       "OPTIONAL MATCH (a)-[:Y]->(y) RETURN x, y",
       {{"null", "null"}}},
      {"optional match on bound null stays null",
       {"CREATE (:A)"},
       "MATCH (a:A) OPTIONAL MATCH (a)-[:X]->(x) "
       "OPTIONAL MATCH (x)-[:Y]->(z) RETURN z",
       {{"null"}}},
      {"match after optional uses bound value",
       {"CREATE (:A)-[:X]->(:B)-[:Y]->(:C)"},
       "MATCH (a:A) OPTIONAL MATCH (a)-[:X]->(b) MATCH (b)-[:Y]->(c) "
       "RETURN count(c) AS n",
       {{"1"}}},
      {"where between two matches filters the pipeline",
       {"CREATE (:A {v: 1})-[:T]->(:B), (:A {v: 2})-[:T]->(:B)"},
       "MATCH (a:A) WITH a WHERE a.v = 1 MATCH (a)-[:T]->(b) "
       "RETURN count(b) AS n",
       {{"1"}}},
      {"cartesian product of disconnected patterns",
       {"CREATE (:A), (:A), (:B), (:B), (:B)"},
       "MATCH (a:A), (b:B) RETURN count(*) AS c",
       {{"6"}}},
      {"cartesian with predicate join",
       {"CREATE (:A {k: 1}), (:A {k: 2}), (:B {k: 1})"},
       "MATCH (a:A), (b:B) WHERE a.k = b.k RETURN count(*) AS c",
       {{"1"}}},
      {"var-length both directions",
       {"CREATE (a:S)-[:T]->(b), (c)-[:T]->(a)"},
       "MATCH (:S)-[:T*1]-(x) RETURN count(*) AS c",
       {{"2"}}},
      {"deep chain exact bound",
       {"CREATE (n0:S)-[:T]->(n1)-[:T]->(n2)-[:T]->(n3)-[:T]->(n4)"},
       "MATCH (:S)-[:T*4]->(x) RETURN count(*) AS c",
       {{"1"}}},
      {"distinct nodes of undirected triangle",
       {"CREATE (a)-[:T]->(b), (b)-[:T]->(c), (c)-[:T]->(a)"},
       "MATCH (x)-[:T]-(y) RETURN count(DISTINCT x) AS c",
       {{"3"}}},
      {"merge inside pipeline per row",
       {"CREATE ({v: 1}), ({v: 2}), ({v: 1})"},
       "MATCH (n) MERGE (k:Key {v: n.v}) RETURN count(DISTINCT k) AS c",
       {{"2"}}},
      {"set from matched value",
       {"CREATE (:A {v: 5})-[:T]->(:B)"},
       "MATCH (a:A)-[:T]->(b:B) SET b.copied = a.v WITH b "
       "RETURN b.copied AS c",
       {{"5"}}},
      {"aliasing keeps entity identity",
       {"CREATE (:A {v: 3})"},
       "MATCH (a:A) WITH a AS b RETURN b.v AS v",
       {{"3"}}},
      {"count on null-only column is zero",
       {"CREATE (:A), (:A)"},
       "MATCH (a:A) OPTIONAL MATCH (a)-[:T]->(m) "
       "RETURN count(m) AS c, count(*) AS rows",
       {{"0", "2"}}},
      {"collect of nodes renders entities",
       {"CREATE (:A {v: 1})"},
       "MATCH (a:A) RETURN size(collect(a)) AS n",
       {{"1"}}},
      {"string functions compose",
       {},
       "RETURN toUpper(trim('  ok  ')) + '!' AS s",
       {{"'OK!'"}}},
      {"arithmetic null propagation through projection",
       {"CREATE ({v: 1}), ({})"},
       "MATCH (n) RETURN n.v * 2 AS d ORDER BY d",
       {{"2"}, {"null"}},
       true},
      {"parameterless quantifier over literal",
       {},
       "RETURN all(x IN [1, 2, 3] WHERE x > 0) AS a, "
       "single(x IN [1, 2] WHERE x = 2) AS s",
       {{"true", "true"}}},
      {"reduce in query",
       {},
       "RETURN reduce(a = 0, x IN range(1, 4) | a + x) AS s",
       {{"10"}}},
      {"union of three parts",
       {"CREATE (:A {v: 1}), (:B {v: 2}), (:C {v: 2})"},
       "MATCH (a:A) RETURN a.v AS v UNION MATCH (b:B) RETURN b.v AS v "
       "UNION MATCH (c:C) RETURN c.v AS v",
       {{"1"}, {"2"}}},
      {"zero length var with label filter",
       {"CREATE (:A:Stop), (:A)-[:T]->(:Stop)"},
       "MATCH (a:A)-[:T*0..1]->(s:Stop) RETURN count(*) AS c",
       {{"2"}}},
      {"relationship property in var-length all steps",
       {"CREATE (:S)-[:T {ok: true}]->()-[:T {ok: false}]->(:E)"},
       "MATCH (:S)-[:T*2 {ok: true}]->(x) RETURN count(*) AS c",
       {{"0"}}},
      {"index into collect",
       {"CREATE ({v: 10}), ({v: 20})"},
       "MATCH (n) WITH collect(n.v) AS vs RETURN vs[0] + vs[1] AS s",
       {{"30"}}},
      {"nested maps and lists in properties",
       {"CREATE ({data: [1, [2, 3]]})"},
       "MATCH (n) RETURN n.data[1][0] AS x",
       {{"2"}}},
      {"boolean property filter shortcut",
       {"CREATE ({flag: true}), ({flag: false}), ({})"},
       "MATCH (n) WHERE n.flag RETURN count(*) AS c",
       {{"1"}}},
      {"remove then optional read",
       {"CREATE (:A {v: 1})"},
       "MATCH (a:A) REMOVE a.v WITH a RETURN a.v AS v",
       {{"null"}}},

      // ---- Third batch: OPTIONAL MATCH ------------------------------------
      {"optional match two-hop pads both columns",
       {"CREATE (:A)-[:T]->(:B)"},
       "MATCH (a:A) OPTIONAL MATCH (a)-[:X]->(b)-[:Y]->(c) RETURN b, c",
       {{"null", "null"}}},
      {"optional match keeps multiplicity",
       {"CREATE (a:A), (a)-[:T]->(:B), (a)-[:T]->(:B)"},
       "MATCH (a:A) OPTIONAL MATCH (a)-[:T]->(b) RETURN count(b) AS c",
       {{"2"}}},
      {"optional match with property map mismatch pads",
       {"CREATE (:A)-[:T]->(:B {v: 2})"},
       "MATCH (a:A) OPTIONAL MATCH (a)-[:T]->(b {v: 1}) RETURN b",
       {{"null"}}},
      {"optional match with zero anchor rows yields zero rows",
       {},
       "MATCH (a:A) OPTIONAL MATCH (a)-[:T]->(b) RETURN a, b",
       {}},
      {"optional match undirected finds either direction",
       {"CREATE (:A)<-[:T]-(:B)"},
       "MATCH (a:A) OPTIONAL MATCH (a)-[:T]-(b:B) RETURN count(b) AS c",
       {{"1"}}},
      {"optional then is-null filter counts unmatched",
       {"CREATE (:A)-[:T]->(:B), (:A), (:A)"},
       "MATCH (a:A) OPTIONAL MATCH (a)-[:T]->(b) WITH a, b "
       "WHERE b IS NULL RETURN count(a) AS c",
       {{"2"}}},
      {"optional match property of null is null",
       {"CREATE (:A)"},
       "MATCH (a:A) OPTIONAL MATCH (a)-[:T]->(b) RETURN b.v AS v",
       {{"null"}}},

      // ---- Third batch: WITH + WHERE chains -------------------------------
      {"with where chain filters twice",
       {"CREATE ({v: 1}), ({v: 2}), ({v: 3})"},
       "MATCH (n) WITH n.v * 2 AS d WHERE d > 2 "
       "WITH d + 1 AS e WHERE e < 7 RETURN sum(e) AS s",
       {{"5"}}},
      {"with distinct then where",
       {"CREATE ({v: 1}), ({v: 1}), ({v: 2}), ({v: 3})"},
       "MATCH (n) WITH DISTINCT n.v AS v WHERE v >= 2 "
       "RETURN count(*) AS c",
       {{"2"}}},
      {"with order limit then aggregate",
       {"CREATE ({v: 3}), ({v: 1}), ({v: 2})"},
       "MATCH (n) WITH n.v AS v ORDER BY v LIMIT 2 RETURN sum(v) AS s",
       {{"3"}}},
      {"with star and extra item",
       {"CREATE ({v: 1}), ({v: 2})"},
       "MATCH (n) WITH *, n.v AS v WHERE v = 1 RETURN count(n) AS c",
       {{"1"}}},
      {"having style filter on aggregate",
       {"CREATE ({g: 1}), ({g: 1}), ({g: 2})"},
       "MATCH (n) WITH n.g AS g, count(*) AS c WHERE c > 1 RETURN g",
       {{"1"}}},
      {"with window skip limit",
       {"CREATE ({v: 1}), ({v: 2}), ({v: 3}), ({v: 4})"},
       "MATCH (n) WITH n.v AS v ORDER BY v SKIP 1 LIMIT 2 "
       "RETURN sum(v) AS s",
       {{"5"}}},
      {"aggregate feeds next where",
       {"CREATE ({v: 1}), ({v: 2}), ({v: 3})"},
       "MATCH (n) WITH count(*) AS c MATCH (m) WHERE m.v < c "
       "RETURN count(m) AS k",
       {{"2"}}},
      {"with chain renames value twice",
       {"CREATE ({v: 5})"},
       "MATCH (n) WITH n.v AS a WITH a AS b WITH b + 1 AS c RETURN c",
       {{"6"}}},

      // ---- Third batch: UNWIND --------------------------------------------
      {"double unwind cross product",
       {},
       "UNWIND [1, 2] AS x UNWIND [10, 20] AS y RETURN x + y AS s "
       "ORDER BY s",
       {{"11"}, {"12"}, {"21"}, {"22"}},
       true},
      {"unwind null yields one null row (Figure 7 fidelity)",
       {},
       "UNWIND null AS x RETURN x",
       {{"null"}}},
      {"unwind scalar yields one row",
       {},
       "UNWIND 5 AS x RETURN x",
       {{"5"}}},
      {"unwind nested lists",
       {},
       "UNWIND [[1, 2], [3]] AS l RETURN size(l) AS s ORDER BY s",
       {{"1"}, {"2"}},
       true},
      {"unwind range with step",
       {},
       "UNWIND range(0, 6, 2) AS x RETURN sum(x) AS s",
       {{"12"}}},
      {"unwind drives match",
       {"CREATE ({v: 1}), ({v: 2}), ({v: 3})"},
       "UNWIND [1, 3] AS id MATCH (n {v: id}) RETURN sum(n.v) AS s",
       {{"4"}}},
      {"unwind distinct collect",
       {"CREATE ({v: 1}), ({v: 1}), ({v: 2})"},
       "MATCH (n) WITH collect(DISTINCT n.v) AS vs UNWIND vs AS v "
       "RETURN count(v) AS c",
       {{"2"}}},

      // ---- Third batch: MERGE ---------------------------------------------
      {"merge creates when absent",
       {},
       "MERGE (n:X {v: 1}) RETURN n.v AS v",
       {{"1"}}},
      {"merge matches existing",
       {"CREATE (:X {v: 1})"},
       "MERGE (n:X {v: 1}) RETURN count(*) AS c",
       {{"1"}}},
      {"merge on create set",
       {},
       "MERGE (n:X {v: 1}) ON CREATE SET n.s = 'new' RETURN n.s AS s",
       {{"'new'"}}},
      {"merge on match set",
       {"CREATE (:X {v: 1})"},
       "MERGE (n:X {v: 1}) ON MATCH SET n.s = 'old' RETURN n.s AS s",
       {{"'old'"}}},
      {"merge relationship between matched nodes",
       {"CREATE (:A), (:B)"},
       "MATCH (a:A), (b:B) MERGE (a)-[r:L]->(b) RETURN count(r) AS c",
       {{"1"}}},
      {"merge in setup is idempotent",
       {"CREATE ({v: 1}), ({v: 1})", "MATCH (n) MERGE (k:K {v: n.v})"},
       "MATCH (k:K) RETURN count(*) AS c",
       {{"1"}}},

      // ---- Third batch: DELETE / SET / REMOVE -----------------------------
      {"delete in setup removes nodes",
       {"CREATE (:D {v: 1}), (:D {v: 2}), (:D {v: 3})",
        "MATCH (d:D {v: 1}) DELETE d"},
       "MATCH (d:D) RETURN count(*) AS c",
       {{"2"}}},
      {"detach delete removes relationships",
       {"CREATE (:A)-[:T]->(:B)", "MATCH (a:A) DETACH DELETE a"},
       "MATCH ()-[r]->() RETURN count(r) AS c",
       {{"0"}}},
      {"set two properties in one clause",
       {"CREATE (:S)"},
       "MATCH (n:S) SET n.a = 1, n.b = 2 WITH n RETURN n.a + n.b AS s",
       {{"3"}}},
      {"set plus-equals merges maps",
       {"CREATE (:S {a: 1})"},
       "MATCH (n:S) SET n += {a: 10, b: 2} WITH n RETURN n.a + n.b AS s",
       {{"12"}}},
      {"set equals replaces all properties",
       {"CREATE (:S {a: 1, b: 2})"},
       "MATCH (n:S) SET n = {x: 5} WITH n RETURN n.x AS x, n.a AS a",
       {{"5", "null"}}},
      {"set adds label",
       {"CREATE (:S)"},
       "MATCH (n:S) SET n:Extra WITH n RETURN size(labels(n)) AS c",
       {{"2"}}},
      {"remove label",
       {"CREATE (:A:B)"},
       "MATCH (n:A) REMOVE n:B WITH n RETURN size(labels(n)) AS c",
       {{"1"}}},
      {"remove property then coalesce",
       {"CREATE (:S {v: 1})"},
       "MATCH (n:S) REMOVE n.v WITH n RETURN coalesce(n.v, -1) AS v",
       {{"-1"}}},

      // ---- Third batch: SKIP / LIMIT --------------------------------------
      {"limit zero returns nothing",
       {"CREATE ({v: 1}), ({v: 2})"},
       "MATCH (n) RETURN n.v AS v LIMIT 0",
       {}},
      {"skip past end returns nothing",
       {"CREATE ({v: 1})"},
       "MATCH (n) RETURN n.v AS v SKIP 5",
       {}},
      {"descending order with window",
       {"CREATE ({v: 1}), ({v: 2}), ({v: 3}), ({v: 4})"},
       "MATCH (n) RETURN n.v AS v ORDER BY v DESC SKIP 1 LIMIT 2",
       {{"3"}, {"2"}},
       true},
      {"order by two keys mixed directions",
       {"CREATE ({a: 1, b: 2}), ({a: 1, b: 1}), ({a: 0, b: 9})"},
       "MATCH (n) RETURN n.a AS a, n.b AS b ORDER BY a, b DESC",
       {{"0", "9"}, {"1", "2"}, {"1", "1"}},
       true},
      {"limit applies after order in with",
       {"CREATE ({v: 3}), ({v: 1}), ({v: 2})"},
       "MATCH (n) WITH n ORDER BY n.v DESC LIMIT 1 RETURN n.v AS v",
       {{"3"}}},

      // ---- Third batch: three-valued null logic ---------------------------
      {"null equals null is null in where",
       {"CREATE ({v: 1})"},
       "MATCH (n) WHERE null = null RETURN count(*) AS c",
       {{"0"}}},
      {"null comparisons project null",
       {},
       "RETURN null = null AS a, null <> null AS b",
       {{"null", "null"}}},
      {"three valued and or truth table",
       {},
       "RETURN true OR null AS a, false OR null AS b, true AND null AS c, "
       "false AND null AS d",
       {{"true", "null", "null", "false"}}},
      {"not null is null",
       {},
       "RETURN NOT null AS x",
       {{"null"}}},
      {"xor with null is null",
       {},
       "RETURN true XOR null AS x",
       {{"null"}}},
      {"in list three valued",
       {},
       "RETURN 1 IN [1, null] AS hit, 2 IN [1, null] AS maybe",
       {{"true", "null"}}},
      {"null arithmetic propagates",
       {},
       "RETURN null + 1 AS a, null * 2 AS b",
       {{"null", "null"}}},
      {"negated comparison drops nulls too",
       {"CREATE ({v: 1}), ({v: 2}), ({})"},
       "MATCH (n) WHERE NOT (n.v > 1) RETURN count(*) AS c",
       {{"1"}}},
      {"coalesce skips leading nulls",
       {},
       "RETURN coalesce(null, null, 7, 8) AS v",
       {{"7"}}},

      // ---- Third batch: list comprehensions -------------------------------
      {"comprehension map only",
       {},
       "RETURN [x IN [1, 2, 3] | x * x] AS xs",
       {{"[1, 4, 9]"}}},
      {"comprehension filter only",
       {},
       "RETURN [x IN [1, 2, 3] WHERE x % 2 = 1] AS xs",
       {{"[1, 3]"}}},
      {"nested comprehension",
       {},
       "RETURN [x IN [1, 2] | [y IN [1, 2] | x * y]] AS xs",
       {{"[[1, 2], [2, 4]]"}}},
      {"comprehension filters nulls",
       {},
       "RETURN size([x IN [1, null, 3] WHERE x IS NOT NULL]) AS c",
       {{"2"}}},
      {"reduce over filtered range",
       {},
       "RETURN reduce(s = 0, x IN [y IN range(1, 4) WHERE y > 1] | s + x) "
       "AS s",
       {{"9"}}},
      {"quantifier over comprehension",
       {},
       "RETURN all(y IN [x IN [2, 4] | x] WHERE y % 2 = 0) AS a",
       {{"true"}}},

      // ---- Third batch: aggregates ----------------------------------------
      {"aggregates on empty input",
       {},
       "MATCH (n:None) RETURN count(n) AS c, sum(n.v) AS s, avg(n.v) AS a, "
       "collect(n.v) AS l",
       {{"0", "0", "null", "[]"}}},
      {"count distinct versus count",
       {"CREATE ({v: 1}), ({v: 1}), ({v: 2})"},
       "MATCH (n) RETURN count(n.v) AS c, count(DISTINCT n.v) AS d",
       {{"3", "2"}}},
  };
}

/// Compares a measured result against the scenario's expected rows
/// (canonically sorted on both sides unless the query is ordered).
void CheckRows(const Scenario& s, const QueryResult& result) {
  std::vector<std::vector<std::string>> got;
  const Table& t = s.ordered ? result.table : result.table.Sorted();
  for (const auto& row : t.rows()) {
    std::vector<std::string> cells;
    for (const auto& v : row) cells.push_back(v.ToString());
    got.push_back(std::move(cells));
  }
  std::vector<std::vector<std::string>> want;
  for (const auto& row : s.expected) {
    std::vector<std::string> cells;
    for (const char* c : row) cells.emplace_back(c);
    want.push_back(std::move(cells));
  }
  if (!s.ordered) std::sort(want.begin(), want.end());
  auto got_sorted = got;
  if (!s.ordered) std::sort(got_sorted.begin(), got_sorted.end());
  EXPECT_EQ(got_sorted, want) << s.name << "\n" << result.table.ToString();
}

class TckTest : public ::testing::TestWithParam<ExecutionMode> {};

TEST_P(TckTest, Scenarios) {
  for (const Scenario& s : Scenarios()) {
    EngineOptions opts;
    opts.mode = GetParam();
    CypherEngine engine(opts);
    for (const char* setup : s.setup) {
      auto r = engine.Execute(setup);
      ASSERT_TRUE(r.ok()) << s.name << " setup: " << r.status().ToString();
    }
    auto result = engine.Execute(s.query);
    ASSERT_TRUE(result.ok()) << s.name << ": " << result.status().ToString();
    CheckRows(s, *result);
  }
}

INSTANTIATE_TEST_SUITE_P(BothExecutors, TckTest,
                         ::testing::Values(ExecutionMode::kInterpreter,
                                           ExecutionMode::kVolcano),
                         [](const auto& pinfo) {
                           return pinfo.param == ExecutionMode::kInterpreter
                                      ? "Interpreter"
                                      : "Volcano";
                         });

// Fourth executor leg: every scenario runs through the batched Volcano
// runtime at the smallest and the default morsel size, and the produced
// rows must be identical (as a bag) to the reference interpreter's — the
// comparison that catches off-by-one bugs at batch boundaries, which the
// expected-rows check alone can miss when a bug drops and duplicates
// symmetric rows.
class TckBatchTest : public ::testing::TestWithParam<size_t> {};

TEST_P(TckBatchTest, BatchedRuntimeMatchesInterpreter) {
  // GQLITE_BATCH_SIZE overrides every engine's morsel size, which would
  // silently turn this leg into a duplicate of the override's size.
  auto effective = EffectiveBatchSize(GetParam());
  if (!effective.ok() || *effective != GetParam()) {
    GTEST_SKIP() << "GQLITE_BATCH_SIZE overrides this leg's batch size";
  }
  for (const Scenario& s : Scenarios()) {
    EngineOptions iopts;
    iopts.mode = ExecutionMode::kInterpreter;
    CypherEngine interp(iopts);
    EngineOptions bopts;
    bopts.mode = ExecutionMode::kVolcano;
    bopts.batch_size = GetParam();
    CypherEngine batched(bopts);
    for (const char* setup : s.setup) {
      ASSERT_TRUE(interp.Execute(setup).ok()) << s.name;
      ASSERT_TRUE(batched.Execute(setup).ok()) << s.name;
    }
    auto want = interp.Execute(s.query);
    ASSERT_TRUE(want.ok()) << s.name << ": " << want.status().ToString();
    auto got = batched.Execute(s.query);
    ASSERT_TRUE(got.ok()) << s.name << ": " << got.status().ToString();
    CheckRows(s, *got);
    EXPECT_TRUE(want->table.SameBag(got->table))
        << s.name << " (batch_size=" << GetParam() << ")\ninterpreter:\n"
        << want->table.ToString() << "batched:\n" << got->table.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(MorselSizes, TckBatchTest,
                         ::testing::Values(size_t{1}, size_t{1024}),
                         [](const auto& pinfo) {
                           return "Batch" + std::to_string(pinfo.param);
                         });

// Fifth executor leg: every scenario runs through the morsel-driven
// PARALLEL runtime at four workers and must produce the same bag as the
// reference interpreter. Scenario graphs are small (often a single
// morsel) — the leg's value is routing coverage: parallel-safe plans
// take the worker-pool path, everything else (UNION, aggregating WITH,
// OPTIONAL MATCH at the driving position, updating setups) must fall
// back to the serial runtime and still agree.
TEST(TckParallel, ParallelRuntimeMatchesInterpreter) {
  // GQLITE_THREADS overrides every engine's worker count, which would
  // silently change what this leg tests (the TSan CI job sets it to 4 on
  // purpose — that keeps this leg at 4 workers, not a skip).
  auto effective = EffectiveNumThreads(4);
  if (!effective.ok() || *effective != 4u) {
    GTEST_SKIP() << "GQLITE_THREADS overrides this leg's worker count";
  }
  for (const Scenario& s : Scenarios()) {
    EngineOptions iopts;
    iopts.mode = ExecutionMode::kInterpreter;
    CypherEngine interp(iopts);
    EngineOptions popts;
    popts.num_threads = 4;
    CypherEngine parallel(popts);
    for (const char* setup : s.setup) {
      ASSERT_TRUE(interp.Execute(setup).ok()) << s.name;
      ASSERT_TRUE(parallel.Execute(setup).ok()) << s.name;
    }
    auto want = interp.Execute(s.query);
    ASSERT_TRUE(want.ok()) << s.name << ": " << want.status().ToString();
    auto got = parallel.Execute(s.query);
    ASSERT_TRUE(got.ok()) << s.name << ": " << got.status().ToString();
    CheckRows(s, *got);
    EXPECT_TRUE(want->table.SameBag(got->table))
        << s.name << " (num_threads=4)\ninterpreter:\n"
        << want->table.ToString() << "parallel:\n" << got->table.ToString();
  }
}

// Third executor leg: every scenario also runs through the plan cache —
// Prepare once, then (for read queries) execute repeatedly via both the
// prepared handle and the query text, all against the same expected rows.
// This is the "cached plans are indistinguishable from fresh planning"
// guarantee the cache must uphold.
TEST(TckPlanCache, CachedPlansMatchFreshPlanning) {
  for (const Scenario& s : Scenarios()) {
    CypherEngine engine;  // Volcano mode, plan cache on (defaults)
    for (const char* setup : s.setup) {
      auto r = engine.Execute(setup);
      ASSERT_TRUE(r.ok()) << s.name << " setup: " << r.status().ToString();
    }
    auto stmt = engine.Prepare(s.query);
    ASSERT_TRUE(stmt.ok()) << s.name << ": " << stmt.status().ToString();
    auto first = engine.Execute(*stmt);
    ASSERT_TRUE(first.ok()) << s.name << ": " << first.status().ToString();
    CheckRows(s, *first);
    if (stmt->updating()) continue;  // re-running would mutate again

    // Second execution reuses the cached plan; the text path shares it
    // too (auto-parameterized key). Both must reproduce the first run.
    auto again = engine.Execute(*stmt);
    ASSERT_TRUE(again.ok()) << s.name << ": " << again.status().ToString();
    EXPECT_TRUE(first->table.SameBag(again->table))
        << s.name << "\nfirst:\n" << first->table.ToString()
        << "cached:\n" << again->table.ToString();
    auto text = engine.Execute(s.query);
    ASSERT_TRUE(text.ok()) << s.name << ": " << text.status().ToString();
    EXPECT_TRUE(first->table.SameBag(text->table)) << s.name;
    EXPECT_GE(engine.plan_cache_stats().hits, 2u) << s.name;
  }
}

}  // namespace
}  // namespace gqlite
