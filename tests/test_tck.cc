// TCK-style acceptance scenarios (the openCypher project publishes a
// Technology Compatibility Kit, §5; these tests follow its
// given-setup/when-query/then-rows style). Every scenario runs through
// BOTH executors — the reference interpreter and the Volcano runtime —
// so the suite doubles as a parity harness on handwritten cases.
//
// Expected rows are written as formatted cell values (FormatValue), with
// row order ignored unless the query has ORDER BY (the harness sorts
// both sides canonically).

#include <gtest/gtest.h>

#include "src/core/engine.h"

namespace gqlite {
namespace {

struct Scenario {
  const char* name;
  std::vector<const char*> setup;
  const char* query;
  std::vector<std::vector<const char*>> expected;  // formatted cells
  bool ordered = false;
};

std::vector<Scenario> Scenarios() {
  return {
      // ---- MATCH basics ----------------------------------------------------
      {"match all nodes on empty graph", {}, "MATCH (n) RETURN n", {}},
      {"match returns every node",
       {"CREATE (:A), (:B)"},
       "MATCH (n) RETURN count(*) AS c",
       {{"2"}}},
      {"label filters",
       {"CREATE (:A {v: 1}), (:B {v: 2}), (:A:B {v: 3})"},
       "MATCH (n:A) RETURN n.v AS v ORDER BY v",
       {{"1"}, {"3"}},
       true},
      {"property map in node pattern",
       {"CREATE ({v: 1, w: 1}), ({v: 1, w: 2})"},
       "MATCH (n {v: 1, w: 2}) RETURN n.w AS w",
       {{"2"}}},
      {"anonymous nodes do not join",
       {"CREATE (:A)-[:T]->(:B), (:A)-[:T]->(:B)"},
       "MATCH ()-[:T]->() RETURN count(*) AS c",
       {{"2"}}},
      {"direction matters",
       {"CREATE (a:A)-[:T]->(b:B)"},
       "MATCH (b:B)-[:T]->(a:A) RETURN count(*) AS c",
       {{"0"}}},
      {"undirected matches both ways",
       {"CREATE (a:A)-[:T]->(b:B)"},
       "MATCH (x)-[:T]-(y) RETURN count(*) AS c",
       {{"2"}}},
      {"multiple types",
       {"CREATE (a)-[:X]->(b), (a)-[:Y]->(b), (a)-[:Z]->(b)"},
       "MATCH ()-[r:X|Y]->() RETURN count(*) AS c",
       {{"2"}}},
      {"pattern tuple is a join",
       {"CREATE (a:A)-[:T]->(b:B), (b)-[:U]->(c:C)"},
       "MATCH (a:A)-[:T]->(m), (m)-[:U]->(c:C) RETURN count(*) AS c",
       {{"1"}}},
      {"relationship variable reuse joins",
       {"CREATE (a:A)-[:T {w: 1}]->(b:B)"},
       "MATCH (a)-[r]->(b) MATCH (x)-[r]->(y) RETURN count(*) AS c",
       {{"1"}}},

      // ---- Variable length --------------------------------------------------
      {"star means one or more",
       {"CREATE (a:S)-[:T]->(b)-[:T]->(c)"},
       "MATCH (a:S)-[:T*]->(x) RETURN count(*) AS c",
       {{"2"}}},
      {"zero length includes self",
       {"CREATE (a:S)-[:T]->(b)"},
       "MATCH (a:S)-[:T*0..1]->(x) RETURN count(*) AS c",
       {{"2"}}},
      {"exact length",
       {"CREATE (a:S)-[:T]->(b)-[:T]->(c)-[:T]->(d)"},
       "MATCH (:S)-[:T*3]->(x) RETURN count(*) AS c",
       {{"1"}}},
      {"variable length respects rel uniqueness",
       {"CREATE (a)-[:T]->(b), (b)-[:T]->(a)"},
       "MATCH (x)-[:T*4]->(y) RETURN count(*) AS c",
       {{"0"}}},  // only 2 rels exist; a length-4 trail is impossible
      {"size of relationship list",
       {"CREATE (a:S)-[:T]->(b)-[:T]->(c)"},
       "MATCH (:S)-[rs:T*1..2]->() RETURN size(rs) AS n ORDER BY n",
       {{"1"}, {"2"}},
       true},

      // ---- OPTIONAL MATCH ---------------------------------------------------
      {"optional match pads with null",
       {"CREATE (:A)"},
       "MATCH (a:A) OPTIONAL MATCH (a)-[:T]->(b) RETURN b",
       {{"null"}}},
      {"optional match keeps matches",
       {"CREATE (:A)-[:T]->(:B {v: 7})"},
       "MATCH (a:A) OPTIONAL MATCH (a)-[:T]->(b) RETURN b.v AS v",
       {{"7"}}},
      {"where inside optional decides padding",
       {"CREATE (:A)-[:T]->(:B {v: 1})"},
       "MATCH (a:A) OPTIONAL MATCH (a)-[:T]->(b) WHERE b.v > 5 RETURN b",
       {{"null"}}},
      {"optional then aggregate counts zero",
       {"CREATE (:A)"},
       "MATCH (a:A) OPTIONAL MATCH (a)-[:T]->(b) RETURN count(b) AS c",
       {{"0"}}},

      // ---- WHERE and null handling ------------------------------------------
      {"where drops null comparisons",
       {"CREATE ({v: 1}), ({v: 2}), ({w: 3})"},
       "MATCH (n) WHERE n.v > 1 RETURN count(*) AS c",
       {{"1"}}},
      {"is null predicate",
       {"CREATE ({v: 1}), ({w: 1})"},
       "MATCH (n) WHERE n.v IS NULL RETURN count(*) AS c",
       {{"1"}}},
      {"label predicate in where",
       {"CREATE (:A), (:B), (:A:B)"},
       "MATCH (n) WHERE n:A AND NOT n:B RETURN count(*) AS c",
       {{"1"}}},
      {"pattern predicate in where",
       {"CREATE (:A)-[:T]->(), (:A)"},
       "MATCH (a:A) WHERE (a)-[:T]->() RETURN count(*) AS c",
       {{"1"}}},
      {"negated pattern predicate",
       {"CREATE (:A)-[:T]->(), (:A)"},
       "MATCH (a:A) WHERE NOT (a)-[:T]->() RETURN count(*) AS c",
       {{"1"}}},
      {"in list with nulls",
       {"CREATE ({v: 1}), ({v: 2})"},
       "MATCH (n) WHERE n.v IN [1, null] RETURN count(*) AS c",
       {{"1"}}},

      // ---- WITH pipeline ----------------------------------------------------
      {"with renames and filters",
       {"CREATE ({v: 1}), ({v: 2}), ({v: 3})"},
       "MATCH (n) WITH n.v AS v WHERE v >= 2 RETURN sum(v) AS s",
       {{"5"}}},
      {"with distinct",
       {"CREATE ({v: 1}), ({v: 1}), ({v: 2})"},
       "MATCH (n) WITH DISTINCT n.v AS v RETURN count(*) AS c",
       {{"2"}}},
      {"with limit then expand",
       {"CREATE (:A {v: 1})-[:T]->(:B), (:A {v: 2})-[:T]->(:B)"},
       "MATCH (a:A) WITH a ORDER BY a.v LIMIT 1 MATCH (a)-[:T]->(b) "
       "RETURN count(*) AS c",
       {{"1"}}},
      {"aggregate then continue",
       {"CREATE ({v: 1}), ({v: 2})"},
       "MATCH (n) WITH count(*) AS n1 MATCH (m) RETURN n1 + count(m) AS t",
       {{"4"}}},

      // ---- RETURN details ----------------------------------------------------
      {"return expression columns get derived names",
       {"CREATE ({v: 41})"},
       "MATCH (n) RETURN n.v + 1",
       {{"42"}}},
      {"return distinct rows",
       {"CREATE ({v: 1}), ({v: 1})"},
       "MATCH (n) RETURN DISTINCT n.v AS v",
       {{"1"}}},
      {"order by with nulls last ascending",
       {"CREATE ({v: 2}), ({v: 1}), ({w: 0})"},
       "MATCH (n) RETURN n.v AS v ORDER BY v",
       {{"1"}, {"2"}, {"null"}},
       true},
      {"skip and limit window",
       {"CREATE ({v: 1}), ({v: 2}), ({v: 3}), ({v: 4})"},
       "MATCH (n) RETURN n.v AS v ORDER BY v SKIP 1 LIMIT 2",
       {{"2"}, {"3"}},
       true},

      // ---- UNWIND ------------------------------------------------------------
      {"unwind literal list", {}, "UNWIND [1, 2, 3] AS x RETURN x ORDER BY x",
       {{"1"}, {"2"}, {"3"}},
       true},
      {"unwind empty list gives no rows",
       {},
       "UNWIND [] AS x RETURN x",
       {}},
      {"unwind range",
       {},
       "UNWIND range(1, 3) AS x RETURN sum(x) AS s",
       {{"6"}}},
      {"unwind collected list round trip",
       {"CREATE ({v: 1}), ({v: 2})"},
       "MATCH (n) WITH collect(n.v) AS vs UNWIND vs AS v RETURN v ORDER BY v",
       {{"1"}, {"2"}},
       true},

      // ---- UNION -------------------------------------------------------------
      {"union deduplicates",
       {"CREATE (:A {v: 1}), (:B {v: 1})"},
       "MATCH (a:A) RETURN a.v AS v UNION MATCH (b:B) RETURN b.v AS v",
       {{"1"}}},
      {"union all keeps duplicates",
       {"CREATE (:A {v: 1}), (:B {v: 1})"},
       "MATCH (a:A) RETURN a.v AS v UNION ALL MATCH (b:B) RETURN b.v AS v",
       {{"1"}, {"1"}}},

      // ---- Expressions in query context ---------------------------------------
      {"case in return",
       {"CREATE ({v: 1}), ({v: 2})"},
       "MATCH (n) RETURN CASE WHEN n.v = 1 THEN 'one' ELSE 'more' END AS w "
       "ORDER BY w",
       {{"'more'"}, {"'one'"}},
       true},
      {"list comprehension over collect",
       {"CREATE ({v: 1}), ({v: 2}), ({v: 3})"},
       "MATCH (n) WITH collect(n.v) AS vs "
       "RETURN [x IN vs WHERE x > 1 | x * 2] AS doubled",
       {{"[4, 6]"}}},
      {"path functions",
       {"CREATE (:S {v: 1})-[:T {w: 9}]->({v: 2})"},
       "MATCH p = (:S)-[:T]->() RETURN length(p) AS len, "
       "size(nodes(p)) AS ns, size(relationships(p)) AS rs",
       {{"1", "2", "1"}}},
      {"labels and type functions",
       {"CREATE (:A:B)-[:REL]->()"},
       "MATCH (a:A)-[r]->() RETURN size(labels(a)) AS nl, type(r) AS t",
       {{"2", "'REL'"}}},
      {"coalesce over missing property",
       {"CREATE ({v: 1}), ({w: 2})"},
       "MATCH (n) RETURN coalesce(n.v, -1) AS v ORDER BY v",
       {{"-1"}, {"1"}},
       true},

      // ---- Self loops & cycles -------------------------------------------------
      {"self loop matches once each direction",
       {"CREATE (a:L), (a)-[:T]->(a)"},
       "MATCH (x:L)-[:T]-(y) RETURN count(*) AS c",
       {{"1"}}},
      {"two node cycle",
       {"CREATE (a)-[:T]->(b), (b)-[:T]->(a)"},
       "MATCH (x)-[:T]->(y)-[:T]->(x) RETURN count(*) AS c",
       {{"2"}}},

      // ---- Temporal --------------------------------------------------------------
      {"temporal ordering",
       {"CREATE ({d: date('2018-06-10')}), ({d: date('2018-01-01')})"},
       "MATCH (n) RETURN n.d AS d ORDER BY d LIMIT 1",
       {{"2018-01-01"}},
       true},
      {"duration components in query",
       {},
       "RETURN duration('P1Y6M3DT12H').months AS m, "
       "duration('P1Y6M3DT12H').days AS d",
       {{"18", "3"}}},

      // ---- Second batch: interactions & edge cases ------------------------------
      {"two optional matches stack nulls",
       {"CREATE (:A)"},
       "MATCH (a:A) OPTIONAL MATCH (a)-[:X]->(x) "
       "OPTIONAL MATCH (a)-[:Y]->(y) RETURN x, y",
       {{"null", "null"}}},
      {"optional match on bound null stays null",
       {"CREATE (:A)"},
       "MATCH (a:A) OPTIONAL MATCH (a)-[:X]->(x) "
       "OPTIONAL MATCH (x)-[:Y]->(z) RETURN z",
       {{"null"}}},
      {"match after optional uses bound value",
       {"CREATE (:A)-[:X]->(:B)-[:Y]->(:C)"},
       "MATCH (a:A) OPTIONAL MATCH (a)-[:X]->(b) MATCH (b)-[:Y]->(c) "
       "RETURN count(c) AS n",
       {{"1"}}},
      {"where between two matches filters the pipeline",
       {"CREATE (:A {v: 1})-[:T]->(:B), (:A {v: 2})-[:T]->(:B)"},
       "MATCH (a:A) WITH a WHERE a.v = 1 MATCH (a)-[:T]->(b) "
       "RETURN count(b) AS n",
       {{"1"}}},
      {"cartesian product of disconnected patterns",
       {"CREATE (:A), (:A), (:B), (:B), (:B)"},
       "MATCH (a:A), (b:B) RETURN count(*) AS c",
       {{"6"}}},
      {"cartesian with predicate join",
       {"CREATE (:A {k: 1}), (:A {k: 2}), (:B {k: 1})"},
       "MATCH (a:A), (b:B) WHERE a.k = b.k RETURN count(*) AS c",
       {{"1"}}},
      {"var-length both directions",
       {"CREATE (a:S)-[:T]->(b), (c)-[:T]->(a)"},
       "MATCH (:S)-[:T*1]-(x) RETURN count(*) AS c",
       {{"2"}}},
      {"deep chain exact bound",
       {"CREATE (n0:S)-[:T]->(n1)-[:T]->(n2)-[:T]->(n3)-[:T]->(n4)"},
       "MATCH (:S)-[:T*4]->(x) RETURN count(*) AS c",
       {{"1"}}},
      {"distinct nodes of undirected triangle",
       {"CREATE (a)-[:T]->(b), (b)-[:T]->(c), (c)-[:T]->(a)"},
       "MATCH (x)-[:T]-(y) RETURN count(DISTINCT x) AS c",
       {{"3"}}},
      {"merge inside pipeline per row",
       {"CREATE ({v: 1}), ({v: 2}), ({v: 1})"},
       "MATCH (n) MERGE (k:Key {v: n.v}) RETURN count(DISTINCT k) AS c",
       {{"2"}}},
      {"set from matched value",
       {"CREATE (:A {v: 5})-[:T]->(:B)"},
       "MATCH (a:A)-[:T]->(b:B) SET b.copied = a.v WITH b "
       "RETURN b.copied AS c",
       {{"5"}}},
      {"aliasing keeps entity identity",
       {"CREATE (:A {v: 3})"},
       "MATCH (a:A) WITH a AS b RETURN b.v AS v",
       {{"3"}}},
      {"count on null-only column is zero",
       {"CREATE (:A), (:A)"},
       "MATCH (a:A) OPTIONAL MATCH (a)-[:T]->(m) "
       "RETURN count(m) AS c, count(*) AS rows",
       {{"0", "2"}}},
      {"collect of nodes renders entities",
       {"CREATE (:A {v: 1})"},
       "MATCH (a:A) RETURN size(collect(a)) AS n",
       {{"1"}}},
      {"string functions compose",
       {},
       "RETURN toUpper(trim('  ok  ')) + '!' AS s",
       {{"'OK!'"}}},
      {"arithmetic null propagation through projection",
       {"CREATE ({v: 1}), ({})"},
       "MATCH (n) RETURN n.v * 2 AS d ORDER BY d",
       {{"2"}, {"null"}},
       true},
      {"parameterless quantifier over literal",
       {},
       "RETURN all(x IN [1, 2, 3] WHERE x > 0) AS a, "
       "single(x IN [1, 2] WHERE x = 2) AS s",
       {{"true", "true"}}},
      {"reduce in query",
       {},
       "RETURN reduce(a = 0, x IN range(1, 4) | a + x) AS s",
       {{"10"}}},
      {"union of three parts",
       {"CREATE (:A {v: 1}), (:B {v: 2}), (:C {v: 2})"},
       "MATCH (a:A) RETURN a.v AS v UNION MATCH (b:B) RETURN b.v AS v "
       "UNION MATCH (c:C) RETURN c.v AS v",
       {{"1"}, {"2"}}},
      {"zero length var with label filter",
       {"CREATE (:A:Stop), (:A)-[:T]->(:Stop)"},
       "MATCH (a:A)-[:T*0..1]->(s:Stop) RETURN count(*) AS c",
       {{"2"}}},
      {"relationship property in var-length all steps",
       {"CREATE (:S)-[:T {ok: true}]->()-[:T {ok: false}]->(:E)"},
       "MATCH (:S)-[:T*2 {ok: true}]->(x) RETURN count(*) AS c",
       {{"0"}}},
      {"index into collect",
       {"CREATE ({v: 10}), ({v: 20})"},
       "MATCH (n) WITH collect(n.v) AS vs RETURN vs[0] + vs[1] AS s",
       {{"30"}}},
      {"nested maps and lists in properties",
       {"CREATE ({data: [1, [2, 3]]})"},
       "MATCH (n) RETURN n.data[1][0] AS x",
       {{"2"}}},
      {"boolean property filter shortcut",
       {"CREATE ({flag: true}), ({flag: false}), ({})"},
       "MATCH (n) WHERE n.flag RETURN count(*) AS c",
       {{"1"}}},
      {"remove then optional read",
       {"CREATE (:A {v: 1})"},
       "MATCH (a:A) REMOVE a.v WITH a RETURN a.v AS v",
       {{"null"}}},
  };
}

class TckTest : public ::testing::TestWithParam<ExecutionMode> {};

TEST_P(TckTest, Scenarios) {
  for (const Scenario& s : Scenarios()) {
    EngineOptions opts;
    opts.mode = GetParam();
    CypherEngine engine(opts);
    for (const char* setup : s.setup) {
      auto r = engine.Execute(setup);
      ASSERT_TRUE(r.ok()) << s.name << " setup: " << r.status().ToString();
    }
    auto result = engine.Execute(s.query);
    ASSERT_TRUE(result.ok()) << s.name << ": " << result.status().ToString();

    // Render measured rows.
    std::vector<std::vector<std::string>> got;
    const Table& t =
        s.ordered ? result->table : result->table.Sorted();
    for (const auto& row : t.rows()) {
      std::vector<std::string> cells;
      for (const auto& v : row) cells.push_back(v.ToString());
      got.push_back(std::move(cells));
    }
    std::vector<std::vector<std::string>> want;
    for (const auto& row : s.expected) {
      std::vector<std::string> cells;
      for (const char* c : row) cells.emplace_back(c);
      want.push_back(std::move(cells));
    }
    if (!s.ordered) std::sort(want.begin(), want.end());
    auto got_sorted = got;
    if (!s.ordered) std::sort(got_sorted.begin(), got_sorted.end());
    EXPECT_EQ(got_sorted, want) << s.name << "\n" << result->table.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(BothExecutors, TckTest,
                         ::testing::Values(ExecutionMode::kInterpreter,
                                           ExecutionMode::kVolcano),
                         [](const auto& info) {
                           return info.param == ExecutionMode::kInterpreter
                                      ? "Interpreter"
                                      : "Volcano";
                         });

}  // namespace
}  // namespace gqlite
