#include <gtest/gtest.h>

#include "src/temporal/temporal.h"
#include "src/temporal/temporal_parse.h"

namespace gqlite {
namespace {

TEST(CivilCalendar, EpochRoundTrip) {
  EXPECT_EQ(DaysFromCivil(1970, 1, 1), 0);
  EXPECT_EQ(DaysFromCivil(1970, 1, 2), 1);
  EXPECT_EQ(DaysFromCivil(1969, 12, 31), -1);
  int64_t y, m, d;
  CivilFromDays(0, &y, &m, &d);
  EXPECT_EQ(y, 1970);
  EXPECT_EQ(m, 1);
  EXPECT_EQ(d, 1);
}

TEST(CivilCalendar, RoundTripSweep) {
  // Round-trip every ~97 days across four centuries.
  for (int64_t days = -200000; days < 200000; days += 97) {
    int64_t y, m, d;
    CivilFromDays(days, &y, &m, &d);
    EXPECT_EQ(DaysFromCivil(y, m, d), days);
    EXPECT_GE(m, 1);
    EXPECT_LE(m, 12);
    EXPECT_GE(d, 1);
    EXPECT_LE(d, DaysInMonth(y, m));
  }
}

TEST(CivilCalendar, LeapYears) {
  EXPECT_TRUE(IsLeapYear(2000));
  EXPECT_FALSE(IsLeapYear(1900));
  EXPECT_TRUE(IsLeapYear(2016));
  EXPECT_FALSE(IsLeapYear(2018));
  EXPECT_EQ(DaysInMonth(2016, 2), 29);
  EXPECT_EQ(DaysInMonth(2018, 2), 28);
}

TEST(CivilCalendar, DayOfWeek) {
  EXPECT_EQ(DayOfWeek(DaysFromCivil(1970, 1, 1)), 3);   // Thursday
  EXPECT_EQ(DayOfWeek(DaysFromCivil(2018, 6, 10)), 6);  // SIGMOD'18 Sunday
}

TEST(Date, AccessorsAndFormat) {
  Date d = Date::FromYmd(2018, 6, 10);
  EXPECT_EQ(d.year(), 2018);
  EXPECT_EQ(d.month(), 6);
  EXPECT_EQ(d.day(), 10);
  EXPECT_EQ(d.ToString(), "2018-06-10");
}

TEST(ParseDate, Valid) {
  auto r = ParseDate("2015-07-21");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->year(), 2015);
  EXPECT_EQ(r->month(), 7);
  EXPECT_EQ(r->day(), 21);
}

TEST(ParseDate, Invalid) {
  EXPECT_FALSE(ParseDate("2015-13-01").ok());
  EXPECT_FALSE(ParseDate("2015-02-30").ok());
  EXPECT_FALSE(ParseDate("2015/01/01").ok());
  EXPECT_FALSE(ParseDate("2015-01-01extra").ok());
}

TEST(ParseLocalTime, Forms) {
  EXPECT_EQ(ParseLocalTime("12:31:14")->ToString(), "12:31:14");
  EXPECT_EQ(ParseLocalTime("12:31:14.5")->ToString(), "12:31:14.5");
  EXPECT_EQ(ParseLocalTime("12:31")->ToString(), "12:31:00");
  EXPECT_EQ(ParseLocalTime("12")->ToString(), "12:00:00");
  EXPECT_FALSE(ParseLocalTime("25:00").ok());
  EXPECT_FALSE(ParseLocalTime("12:61").ok());
}

TEST(ParseZonedTime, Offsets) {
  auto r = ParseZonedTime("10:00:00+01:00");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->offset_seconds, 3600);
  EXPECT_EQ(r->ToString(), "10:00:00+01:00");
  auto z = ParseZonedTime("10:00:00Z");
  ASSERT_TRUE(z.ok());
  EXPECT_EQ(z->offset_seconds, 0);
  // 10:00+01:00 == 09:00Z as instants.
  EXPECT_EQ(r->NormalizedNanos(),
            ParseZonedTime("09:00:00Z")->NormalizedNanos());
}

TEST(ParseDateTime, Full) {
  auto r = ParseZonedDateTime("2018-06-10T14:30:00+02:00");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->local.date.year(), 2018);
  EXPECT_EQ(r->offset_seconds, 7200);
  EXPECT_EQ(r->ToString(), "2018-06-10T14:30:00+02:00");
  auto l = ParseLocalDateTime("2018-06-10T14:30:00");
  ASSERT_TRUE(l.ok());
  EXPECT_EQ(l->ToString(), "2018-06-10T14:30:00");
}

TEST(ParseDuration, Components) {
  auto r = ParseDuration("P1Y2M10DT2H30M14.5S");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->months, 14);
  EXPECT_EQ(r->days, 10);
  EXPECT_EQ(r->seconds, 2 * 3600 + 30 * 60 + 14);
  EXPECT_EQ(r->nanos, 500000000);
}

TEST(ParseDuration, WeeksAndNegation) {
  auto r = ParseDuration("P2W");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->days, 14);
  auto n = ParseDuration("-P1D");
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n->days, -1);
  EXPECT_FALSE(ParseDuration("P").ok());
  EXPECT_FALSE(ParseDuration("1D").ok());
}

TEST(Duration, FormatCanonical) {
  EXPECT_EQ(Duration::Make(0, 0, 0, 0).ToString(), "P0D");
  EXPECT_EQ(Duration::Make(14, 10, 9014, 500000000).ToString(),
            "P1Y2M10DT2H30M14.5S");
  EXPECT_EQ(Duration::Make(0, 0, 45, 0).ToString(), "PT45S");
}

TEST(Duration, ArithmeticAndNormalization) {
  Duration a = Duration::Make(0, 0, 1, 999999999);
  Duration b = Duration::Make(0, 0, 0, 2);
  Duration c = a + b;
  EXPECT_EQ(c.seconds, 2);
  EXPECT_EQ(c.nanos, 1);
  Duration d = Duration::Make(0, 0, 5, 0) - Duration::Make(0, 0, 0, 1);
  EXPECT_EQ(d.seconds, 4);
  EXPECT_EQ(d.nanos, 999999999);
}

TEST(AddDuration, DateClampsEndOfMonth) {
  // Jan 31 + 1 month = Feb 28 (2018 not leap).
  Date d = Date::FromYmd(2018, 1, 31);
  Date r = AddDuration(d, Duration::Make(1, 0, 0, 0));
  EXPECT_EQ(r.ToString(), "2018-02-28");
  // ... + another month = Mar 28 (clamped day kept).
  EXPECT_EQ(AddDuration(r, Duration::Make(1, 0, 0, 0)).ToString(),
            "2018-03-28");
}

TEST(AddDuration, DateTimeCarriesDays) {
  LocalDateTime dt{Date::FromYmd(2018, 6, 10),
                   LocalTime::FromHms(23, 30, 0)};
  LocalDateTime r = AddDuration(dt, Duration::Make(0, 0, 3600, 0));
  EXPECT_EQ(r.ToString(), "2018-06-11T00:30:00");
  LocalDateTime back = AddDuration(r, Duration::Make(0, 0, -3600, 0));
  EXPECT_EQ(back.ToString(), "2018-06-10T23:30:00");
}

TEST(AddDuration, LocalTimeWraps) {
  LocalTime t = LocalTime::FromHms(23, 0, 0);
  EXPECT_EQ(AddDuration(t, Duration::Make(0, 0, 7200, 0)).ToString(),
            "01:00:00");
  EXPECT_EQ(AddDuration(t, Duration::Make(0, 0, -86400, 0)).ToString(),
            "23:00:00");
}

TEST(DurationBetween, Dates) {
  Duration d = DurationBetween(Date::FromYmd(2018, 6, 10),
                               Date::FromYmd(2018, 7, 1));
  EXPECT_EQ(d.days, 21);
  EXPECT_EQ(d.months, 0);
}

TEST(DurationBetween, Instants) {
  ZonedDateTime a{
      {Date::FromYmd(2018, 6, 10), LocalTime::FromHms(12, 0, 0)}, 0};
  ZonedDateTime b{
      {Date::FromYmd(2018, 6, 10), LocalTime::FromHms(14, 0, 0)}, 7200};
  // b is 14:00+02:00 == 12:00Z — the same instant as a.
  Duration d = DurationBetween(a, b);
  EXPECT_EQ(d.days, 0);
  EXPECT_EQ(d.seconds, 0);
}

TEST(Duration, ComparableNanosOrdersByApproxLength) {
  Duration month = Duration::Make(1, 0, 0, 0);
  Duration days29 = Duration::Make(0, 29, 0, 0);
  Duration days32 = Duration::Make(0, 32, 0, 0);
  EXPECT_LT(days29.ComparableNanos(), month.ComparableNanos());
  EXPECT_LT(month.ComparableNanos(), days32.ComparableNanos());
}

}  // namespace
}  // namespace gqlite
