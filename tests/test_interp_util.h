#ifndef GQLITE_TESTS_TEST_INTERP_UTIL_H_
#define GQLITE_TESTS_TEST_INTERP_UTIL_H_

#include <string>

#include "src/frontend/analyzer.h"
#include "src/frontend/parser.h"
#include "src/interp/interpreter.h"
#include "src/update/update_executor.h"

namespace gqlite {
namespace testutil {

/// Runs a query through the reference interpreter on `graph` (tests use
/// this before the full engine facade; the engine wraps the same pieces).
inline Result<Table> RunInterp(GraphPtr graph, const std::string& query,
                               ValueMap params = {},
                               MatchOptions match_opts = {}) {
  GQL_ASSIGN_OR_RETURN(ast::Query q, ParseQuery(query));
  GQL_ASSIGN_OR_RETURN(QueryInfo info, Analyze(q));
  (void)info;
  GraphCatalog catalog;
  catalog.RegisterGraph(GraphCatalog::kDefaultGraphName, graph);
  uint64_t rand_state = 0xC0FFEE;
  Interpreter::Options opts;
  opts.match = match_opts;
  Interpreter interp(&catalog, graph, &params, opts, &rand_state);
  UpdateStats stats;
  interp.set_update_handler([&](const ast::Clause& c,
                                Table t) -> Result<Table> {
    UpdateExecutor upd(interp.current_graph().get(), &params, match_opts,
                       &rand_state, &stats);
    return upd.Execute(c, std::move(t));
  });
  return interp.ExecuteQuery(q);
}

/// Builds the expected table from fields and rows for SameBag comparisons.
inline Table MakeTable(std::vector<std::string> fields,
                       std::vector<ValueList> rows) {
  Table t(std::move(fields));
  for (auto& r : rows) t.AddRow(std::move(r));
  return t;
}

}  // namespace testutil
}  // namespace gqlite

#endif  // GQLITE_TESTS_TEST_INTERP_UTIL_H_
