// Reproduces, as tests, every worked example of the paper: the §3
// step-by-step query walkthrough (Figure 2a/2b and the three inline
// binding tables), Examples 4.2–4.5 (pattern satisfaction on the Figure 4
// graph), Example 4.6 (MATCH driving-table semantics) and the §4.2
// complexity example (self-loop, non-repeating relationships).

#include <gtest/gtest.h>

#include "src/workload/generators.h"
#include "src/workload/paper_graphs.h"
#include "tests/test_interp_util.h"

namespace gqlite {
namespace {

using testutil::MakeTable;
using testutil::RunInterp;

Value N(const workload::PaperFigure1& f, int i) {
  return Value::Node(f.n[i]);
}
Value N4(const workload::PaperFigure4& f, int i) {
  return Value::Node(f.n[i]);
}

// ---- §3 walkthrough ---------------------------------------------------------

class PaperWalkthrough : public ::testing::Test {
 protected:
  void SetUp() override { fig1_ = workload::MakePaperFigure1Graph(); }
  workload::PaperFigure1 fig1_;
};

TEST_F(PaperWalkthrough, Line1MatchResearchers) {
  auto t = RunInterp(fig1_.graph, "MATCH (r:Researcher) RETURN r");
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  // "three bindings for the variable r, namely n1, n6, and n10".
  Table expect = MakeTable({"r"}, {{N(fig1_, 1)}, {N(fig1_, 6)},
                                   {N(fig1_, 10)}});
  EXPECT_TRUE(t->SameBag(expect)) << t->ToString();
}

TEST_F(PaperWalkthrough, Figure2aOptionalMatchBindings) {
  auto t = RunInterp(fig1_.graph,
                     "MATCH (r:Researcher) "
                     "OPTIONAL MATCH (r)-[:SUPERVISES]->(s:Student) "
                     "RETURN r, s");
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  // Figure 2a: (n1, null), (n6, n7), (n6, n8), (n10, n7).
  Table expect = MakeTable({"r", "s"}, {{N(fig1_, 1), Value::Null()},
                                        {N(fig1_, 6), N(fig1_, 7)},
                                        {N(fig1_, 6), N(fig1_, 8)},
                                        {N(fig1_, 10), N(fig1_, 7)}});
  EXPECT_TRUE(t->SameBag(expect)) << t->ToString();
}

TEST_F(PaperWalkthrough, Figure2bWithAggregation) {
  auto t = RunInterp(fig1_.graph,
                     "MATCH (r:Researcher) "
                     "OPTIONAL MATCH (r)-[:SUPERVISES]->(s:Student) "
                     "WITH r, count(s) AS studentsSupervised "
                     "RETURN r, studentsSupervised");
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  // Figure 2b: (n1, 0), (n6, 2), (n10, 1).
  Table expect = MakeTable(
      {"r", "studentsSupervised"},
      {{N(fig1_, 1), Value::Int(0)},
       {N(fig1_, 6), Value::Int(2)},
       {N(fig1_, 10), Value::Int(1)}});
  EXPECT_TRUE(t->SameBag(expect)) << t->ToString();
}

TEST_F(PaperWalkthrough, Line4AuthorsTable) {
  auto t = RunInterp(fig1_.graph,
                     "MATCH (r:Researcher) "
                     "OPTIONAL MATCH (r)-[:SUPERVISES]->(s:Student) "
                     "WITH r, count(s) AS studentsSupervised "
                     "MATCH (r)-[:AUTHORS]->(p1:Publication) "
                     "RETURN r, studentsSupervised, p1");
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  // §3 inline table: n10 (Thor) drops out; n1→n2, n6→n5, n6→n9.
  Table expect = MakeTable(
      {"r", "studentsSupervised", "p1"},
      {{N(fig1_, 1), Value::Int(0), N(fig1_, 2)},
       {N(fig1_, 6), Value::Int(2), N(fig1_, 5)},
       {N(fig1_, 6), Value::Int(2), N(fig1_, 9)}});
  EXPECT_TRUE(t->SameBag(expect)) << t->ToString();
}

TEST_F(PaperWalkthrough, Line5VariableLengthCitations) {
  auto t = RunInterp(fig1_.graph,
                     "MATCH (r:Researcher) "
                     "OPTIONAL MATCH (r)-[:SUPERVISES]->(s:Student) "
                     "WITH r, count(s) AS studentsSupervised "
                     "MATCH (r)-[:AUTHORS]->(p1:Publication) "
                     "OPTIONAL MATCH (p1)<-[:CITES*]-(p2:Publication) "
                     "RETURN r, studentsSupervised, p1, p2");
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  // §3 inline table — note the two identical (†) rows for p2 = n9, caused
  // by the two CITES paths n9→n4→n2 and n9→n5→n2 (bag semantics).
  Table expect = MakeTable(
      {"r", "studentsSupervised", "p1", "p2"},
      {{N(fig1_, 1), Value::Int(0), N(fig1_, 2), N(fig1_, 4)},
       {N(fig1_, 1), Value::Int(0), N(fig1_, 2), N(fig1_, 9)},
       {N(fig1_, 1), Value::Int(0), N(fig1_, 2), N(fig1_, 5)},
       {N(fig1_, 1), Value::Int(0), N(fig1_, 2), N(fig1_, 9)},
       {N(fig1_, 6), Value::Int(2), N(fig1_, 5), N(fig1_, 9)},
       {N(fig1_, 6), Value::Int(2), N(fig1_, 9), Value::Null()}});
  EXPECT_TRUE(t->SameBag(expect)) << t->ToString();
}

TEST_F(PaperWalkthrough, FinalResultTable) {
  auto t = RunInterp(fig1_.graph,
                     "MATCH (r:Researcher) "
                     "OPTIONAL MATCH (r)-[:SUPERVISES]->(s:Student) "
                     "WITH r, count(s) AS studentsSupervised "
                     "MATCH (r)-[:AUTHORS]->(p1:Publication) "
                     "OPTIONAL MATCH (p1)<-[:CITES*]-(p2:Publication) "
                     "RETURN r.name, studentsSupervised, "
                     "count(DISTINCT p2) AS citedCount");
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  // The paper's final table: Nils 0 3 / Elin 2 1.
  Table expect = MakeTable(
      {"r.name", "studentsSupervised", "citedCount"},
      {{Value::String("Nils"), Value::Int(0), Value::Int(3)},
       {Value::String("Elin"), Value::Int(2), Value::Int(1)}});
  EXPECT_TRUE(t->SameBag(expect)) << t->ToString();
}

// ---- §4.2 Examples on the Figure 4 graph -----------------------------------

class Figure4Examples : public ::testing::Test {
 protected:
  void SetUp() override { fig4_ = workload::MakePaperFigure4Graph(); }
  workload::PaperFigure4 fig4_;
};

TEST_F(Figure4Examples, Example42NodePatternSatisfaction) {
  // χ1 = (x:Teacher): satisfied by n1, n3, n4 but not n2.
  auto t = RunInterp(fig4_.graph, "MATCH (x:Teacher) RETURN x");
  ASSERT_TRUE(t.ok());
  Table expect = MakeTable(
      {"x"}, {{N4(fig4_, 1)}, {N4(fig4_, 3)}, {N4(fig4_, 4)}});
  EXPECT_TRUE(t->SameBag(expect)) << t->ToString();
  // χ2 = (y): satisfied by every node.
  auto t2 = RunInterp(fig4_.graph, "MATCH (y) RETURN y");
  ASSERT_TRUE(t2.ok());
  EXPECT_EQ(t2->NumRows(), 4u);
}

TEST_F(Figure4Examples, Example43RigidPattern) {
  // (x:Teacher)-[:KNOWS*2]->(y): unique match x=n1, y=n3 via n1 r1 n2 r2 n3.
  auto t = RunInterp(fig4_.graph,
                     "MATCH (x:Teacher)-[:KNOWS*2]->(y) RETURN x, y");
  ASSERT_TRUE(t.ok());
  Table expect = MakeTable({"x", "y"}, {{N4(fig4_, 1), N4(fig4_, 3)},
                                        {N4(fig4_, 2), N4(fig4_, 4)}});
  // Note: the example text only discusses x=n1; the pattern also matches
  // x=n2? No — x must be a Teacher, and n2 is a Student. Only teachers:
  // n1→n3 (2 hops) and n3 has only 1 outgoing hop. So exactly one row.
  expect = MakeTable({"x", "y"}, {{N4(fig4_, 1), N4(fig4_, 3)}});
  EXPECT_TRUE(t->SameBag(expect)) << t->ToString();
}

TEST_F(Figure4Examples, Example44VariableLengthTwoHops) {
  // (x:Teacher)-[:KNOWS*1..2]->(z)-[:KNOWS*1..2]->(y:Teacher).
  auto t = RunInterp(
      fig4_.graph,
      "MATCH (x:Teacher)-[:KNOWS*1..2]->(z)-[:KNOWS*1..2]->(y:Teacher) "
      "RETURN x, z, y");
  ASSERT_TRUE(t.ok());
  // p1 = n1r1n2r2n3 (z=n2, y=n3); p2 = n1..n4 with z=n2 (split 1+2) and
  // z=n3 (split 2+1); also n3→n4? x=n3: 1 hop to n4 then need ≥1 more —
  // n4 has no out edges. So rows: (n1,n2,n3), (n1,n2,n4), (n1,n3,n4).
  Table expect = MakeTable({"x", "z", "y"},
                           {{N4(fig4_, 1), N4(fig4_, 2), N4(fig4_, 3)},
                            {N4(fig4_, 1), N4(fig4_, 2), N4(fig4_, 4)},
                            {N4(fig4_, 1), N4(fig4_, 3), N4(fig4_, 4)}});
  EXPECT_TRUE(t->SameBag(expect)) << t->ToString();
}

TEST_F(Figure4Examples, Example45BagMultiplicity) {
  // Same pattern with the middle node anonymous: the path n1r1n2r2n3r3n4
  // satisfies the pattern under TWO rigid refinements (splits 1+2 and
  // 2+1), so the row (n1, n4) appears TWICE (bag semantics).
  auto t = RunInterp(
      fig4_.graph,
      "MATCH (x:Teacher)-[:KNOWS*1..2]->()-[:KNOWS*1..2]->(y:Teacher) "
      "RETURN x, y");
  ASSERT_TRUE(t.ok());
  Table expect = MakeTable({"x", "y"},
                           {{N4(fig4_, 1), N4(fig4_, 3)},
                            {N4(fig4_, 1), N4(fig4_, 4)},
                            {N4(fig4_, 1), N4(fig4_, 4)}});
  EXPECT_TRUE(t->SameBag(expect)) << t->ToString();
}

TEST_F(Figure4Examples, Example46DrivingTableSemantics) {
  // [[MATCH (x)-[:KNOWS*]->(y)]] applied to the table {(x:n1); (x:n3)}.
  // We realize the driving table with UNWIND over the node ids.
  auto t = RunInterp(
      fig4_.graph,
      "MATCH (x) WHERE id(x) IN [0, 2] "  // n1 has id 0, n3 has id 2
      "MATCH (x)-[:KNOWS*]->(y) RETURN x, y");
  ASSERT_TRUE(t.ok());
  // Result rows: (n1,n2), (n1,n3), (n1,n4), (n3,n4).
  Table expect = MakeTable({"x", "y"}, {{N4(fig4_, 1), N4(fig4_, 2)},
                                        {N4(fig4_, 1), N4(fig4_, 3)},
                                        {N4(fig4_, 1), N4(fig4_, 4)},
                                        {N4(fig4_, 3), N4(fig4_, 4)}});
  EXPECT_TRUE(t->SameBag(expect)) << t->ToString();
}

// ---- §4.2 complexity discussion ---------------------------------------------

TEST(ComplexityExamples, SelfLoopZeroOrMore) {
  // One node n with a self-loop. Under Cypher's relationship-isomorphism
  // semantics, (x)-[*0..]->(x) has exactly TWO matches: traversing the
  // loop zero times and once ("two matches will be returned").
  workload::SelfLoop s = workload::MakeSelfLoopGraph();
  auto t = RunInterp(s.graph, "MATCH (x)-[*0..]->(x) RETURN x");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->NumRows(), 2u) << t->ToString();
}

TEST(ComplexityExamples, HomomorphismUnboundedNeedsCap) {
  // Under homomorphism the same pattern matches once per traversal count:
  // with a cap of k it yields k+1 rows (0..k traversals).
  workload::SelfLoop s = workload::MakeSelfLoopGraph();
  MatchOptions opts;
  opts.morphism = Morphism::kHomomorphism;
  opts.max_var_length = 5;
  auto t = RunInterp(s.graph, "MATCH (x)-[*0..]->(x) RETURN x", {}, opts);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->NumRows(), 6u) << t->ToString();
}

TEST(ComplexityExamples, EdgeIsoForbidsRelReuseAcrossTuple) {
  // (a)-[r]->(b), (c)-[s]->(d): r and s can never bind the same
  // relationship in one match (relationship isomorphism across the tuple).
  workload::SelfLoop s = workload::MakeSelfLoopGraph();
  auto t = RunInterp(s.graph,
                     "MATCH (a)-[r]->(b), (c)-[s]->(d) RETURN r, s");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->NumRows(), 0u);
  // Under homomorphism it matches (both bind the loop).
  MatchOptions opts;
  opts.morphism = Morphism::kHomomorphism;
  auto t2 = RunInterp(s.graph,
                      "MATCH (a)-[r]->(b), (c)-[s]->(d) RETURN r, s", {},
                      opts);
  ASSERT_TRUE(t2.ok());
  EXPECT_EQ(t2->NumRows(), 1u);
}

// ---- §3 industry queries on synthetic workloads ------------------------------

TEST(IndustryQueries, NetworkManagementShape) {
  workload::DependencyConfig cfg;
  cfg.layers = 3;
  cfg.per_layer = 4;
  cfg.fanout = 2;
  GraphPtr g = workload::MakeDependencyNetwork(cfg);
  auto t = RunInterp(g,
                     "MATCH (svc:Service)<-[:DEPENDS_ON*]-(dep:Service) "
                     "RETURN svc.name AS name, count(DISTINCT dep) AS "
                     "dependents ORDER BY dependents DESC LIMIT 1");
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  ASSERT_EQ(t->NumRows(), 1u);
  // The tier-0 "core" service is depended on by everything above it.
  EXPECT_EQ(t->rows()[0][0].AsString(), "svc-0-0");
  EXPECT_EQ(t->rows()[0][1].AsInt(), 8);  // all 2*4 services of tiers 1-2
}

TEST(IndustryQueries, FraudDetectionRings) {
  workload::FraudConfig cfg;
  cfg.num_holders = 30;
  cfg.num_rings = 3;
  cfg.ring_size = 3;
  GraphPtr g = workload::MakeFraudGraph(cfg);
  auto t = RunInterp(
      g,
      "MATCH (accHolder:AccountHolder)-[:HAS]->(pInfo) "
      "WHERE pInfo:SSN OR pInfo:PhoneNumber OR pInfo:Address "
      "WITH pInfo, collect(accHolder.uniqueId) AS accountHolders, "
      "count(*) AS fraudRingCount "
      "WHERE fraudRingCount > 1 "
      "RETURN accountHolders, labels(pInfo) AS personalInformation, "
      "fraudRingCount");
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  // 3 shared SSNs + 2 shared phones (rings 0 and 2 share phones).
  EXPECT_EQ(t->NumRows(), 5u) << t->ToString();
  for (const auto& row : t->rows()) {
    EXPECT_GE(row[2].AsInt(), 2);
    EXPECT_EQ(row[0].AsList().size(), static_cast<size_t>(row[2].AsInt()));
  }
}

}  // namespace
}  // namespace gqlite
