// Experiment E7 (DESIGN.md): the §3 network-management query — "the
// component that is depended upon — both directly and indirectly — by the
// largest number of entities" — on layered data-center graphs of growing
// depth and width. The variable-length DEPENDS_ON* dominates; cost grows
// with the number of dependency paths, not just entities.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace gqlite {
namespace {

const char* kQuery =
    "MATCH (svc:Service)<-[:DEPENDS_ON*]-(dep:Service) "
    "RETURN svc.name AS svc, count(DISTINCT dep) AS dependents "
    "ORDER BY dependents DESC LIMIT 1";

void BM_NetMgmtWidth(benchmark::State& state) {
  workload::DependencyConfig cfg;
  cfg.layers = 3;
  cfg.per_layer = static_cast<size_t>(state.range(0));
  cfg.fanout = 2;
  GraphPtr g = workload::MakeDependencyNetwork(cfg);
  Database db = bench::MakeDatabase(g);
  int64_t dependents = 0;
  for (auto _ : state) {
    Table t = bench::MustRun(db, kQuery);
    dependents = t.rows()[0][1].AsInt();
    benchmark::DoNotOptimize(t);
  }
  // The core service is depended on by every service in higher tiers.
  state.counters["dependents"] = static_cast<double>(dependents);
}
BENCHMARK(BM_NetMgmtWidth)->Arg(8)->Arg(16)->Arg(32);

void BM_NetMgmtDepth(benchmark::State& state) {
  workload::DependencyConfig cfg;
  cfg.layers = static_cast<size_t>(state.range(0));
  cfg.per_layer = 8;
  cfg.fanout = 2;
  GraphPtr g = workload::MakeDependencyNetwork(cfg);
  Database db = bench::MakeDatabase(g);
  for (auto _ : state) {
    Table t = bench::MustRun(db, kQuery);
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(BM_NetMgmtDepth)->Arg(2)->Arg(3)->Arg(4)->Arg(5);

void BM_BlastRadius(benchmark::State& state) {
  // The companion impact query from examples/network_ops.
  workload::DependencyConfig cfg;
  cfg.layers = 4;
  cfg.per_layer = static_cast<size_t>(state.range(0));
  cfg.fanout = 2;
  GraphPtr g = workload::MakeDependencyNetwork(cfg);
  Database db = bench::MakeDatabase(g);
  for (auto _ : state) {
    Table t = bench::MustRun(
        db,
        "MATCH (core:Service {name: 'svc-0-0'})<-[:DEPENDS_ON*]-(dep) "
        "RETURN count(DISTINCT dep) AS affected");
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(BM_BlastRadius)->Arg(8)->Arg(16);

}  // namespace
}  // namespace gqlite

GQLITE_BENCH_MAIN()
