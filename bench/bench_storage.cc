// Storage layer: what durability costs at commit time, and what a
// checkpoint buys at open time. The headline comparison is cold-start —
// Database::Open replaying an N-commit WAL versus loading the
// checkpoint the same history was folded into.
//
// In the committed baseline for trajectory tracking, but NOT gated in
// CI (see ci.yml): every row here is dominated by fsync/file IO, whose
// latency varies wildly across runners and filesystems.

#include <benchmark/benchmark.h>

#include <filesystem>
#include <string>

#include "bench/bench_util.h"

namespace gqlite {
namespace {

namespace fs = std::filesystem;

std::string ScratchDir(const std::string& name) {
  std::string dir =
      (fs::temp_directory_path() / ("gqlite_bench_storage_" + name))
          .string();
  fs::remove_all(dir);
  return dir;
}

// Seeds a durable database with `commits` single-CREATE transactions —
// one WAL frame each, which is what makes replay length the variable
// under test.
void SeedCommits(const std::string& dir, int64_t commits,
                 benchmark::State& state) {
  auto opened = Database::Open(dir);
  if (!opened.ok()) {
    state.SkipWithError(opened.status().ToString().c_str());
    return;
  }
  Database db = std::move(*opened);
  for (int64_t i = 0; i < commits; ++i) {
    auto r = db.Execute(
        "CREATE (:Person {idx: " + std::to_string(i) +
        ", name: 'p" + std::to_string(i) + "'})");
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
  }
}

// Cold start, log-heavy layout: open must replay every commit's frame.
void BM_ColdStartWalReplay(benchmark::State& state) {
  std::string dir = ScratchDir("replay_" + std::to_string(state.range(0)));
  SeedCommits(dir, state.range(0), state);
  for (auto _ : state) {
    auto opened = Database::Open(dir);
    if (!opened.ok()) {
      state.SkipWithError(opened.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(opened->graph().NumNodes());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ColdStartWalReplay)->Arg(256)->Arg(1024)
    ->Unit(benchmark::kMillisecond);

// Cold start, checkpointed layout: the same history folded into a
// baseline, so open deserializes pages instead of replaying commits.
void BM_ColdStartCheckpointLoad(benchmark::State& state) {
  std::string dir = ScratchDir("ckpt_" + std::to_string(state.range(0)));
  SeedCommits(dir, state.range(0), state);
  {
    auto opened = Database::Open(dir);
    if (!opened.ok() || !opened->Checkpoint().ok()) {
      state.SkipWithError("checkpoint setup failed");
      return;
    }
  }
  for (auto _ : state) {
    auto opened = Database::Open(dir);
    if (!opened.ok()) {
      state.SkipWithError(opened.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(opened->graph().NumNodes());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ColdStartCheckpointLoad)->Arg(256)->Arg(1024)
    ->Unit(benchmark::kMillisecond);

// Per-commit price of durability: the same auto-commit CREATE against
// an in-memory database and against the WAL (append + fdatasync on
// every acknowledged commit).
void BM_CommitInMemory(benchmark::State& state) {
  Database db = bench::MakeEmptyDatabase();
  int64_t i = 0;
  for (auto _ : state) {
    auto r = db.Execute("CREATE (:N {idx: " + std::to_string(i++) + "})");
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CommitInMemory);

void BM_CommitDurable(benchmark::State& state) {
  std::string dir = ScratchDir("commit");
  auto opened = Database::Open(dir);
  if (!opened.ok()) {
    state.SkipWithError(opened.status().ToString().c_str());
    return;
  }
  Database db = std::move(*opened);
  int64_t i = 0;
  for (auto _ : state) {
    auto r = db.Execute("CREATE (:N {idx: " + std::to_string(i++) + "})");
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CommitDurable);

// Checkpoint cost itself: serialize an N-node committed snapshot and
// truncate the log.
void BM_WriteCheckpoint(benchmark::State& state) {
  std::string dir = ScratchDir("write_" + std::to_string(state.range(0)));
  SeedCommits(dir, state.range(0), state);
  auto opened = Database::Open(dir);
  if (!opened.ok()) {
    state.SkipWithError(opened.status().ToString().c_str());
    return;
  }
  Database db = std::move(*opened);
  for (auto _ : state) {
    Status st = db.Checkpoint();
    if (!st.ok()) {
      state.SkipWithError(st.ToString().c_str());
      return;
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_WriteCheckpoint)->Arg(1024)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace gqlite

GQLITE_BENCH_MAIN()
