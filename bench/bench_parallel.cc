// Morsel-driven parallel execution at 1/2/4 workers on the fan-out
// social graph: scan+filter, two-hop expand, global aggregation, and
// the parallel pipeline breakers (ORDER BY merge sort, partitioned
// many-group aggregation, partitioned DISTINCT) — the plan shapes the
// parallel runtime targets. The thread count is the benchmark argument
// (BM_Parallel*/T), so scaling is read straight off the report; on a
// multi-core machine the 4-worker rows should run >= 1.5x faster than
// the 1-worker rows for the scan+filter, aggregation and breaker cases.
//
// CI gating note: only the /1 (single-worker) rows are machine-portable
// — multi-worker speedups depend on the runner's core count, so the CI
// gate excludes /2 and /4 by name (see .github/workflows/ci.yml); the
// committed baseline still records them for local comparison.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace gqlite {
namespace {

/// Larger than bench_batch's graph: parallel speedup needs enough work
/// per morsel to amortize the per-range pipeline re-open.
GraphPtr ParallelGraph() {
  static GraphPtr g = [] {
    workload::SocialConfig cfg;
    cfg.num_people = 2048;
    cfg.avg_friends = 12;
    cfg.num_cities = 16;
    return workload::MakeSocialNetwork(cfg);
  }();
  return g;
}

void RunQuery(benchmark::State& state, const char* query) {
  EngineOptions opts;
  opts.num_threads = static_cast<size_t>(state.range(0));
  Database db = bench::MakeDatabase(ParallelGraph(), opts);
  int64_t result = 0;
  for (auto _ : state) {
    Table t = bench::MustRun(db, query);
    // Integer first cell (the count queries) is the most stable check
    // value; for string-valued breakers fall back to the row count.
    const Value& cell = t.rows()[0][0];
    result = cell.is_int() ? cell.AsInt()
                           : static_cast<int64_t>(t.NumRows());
    benchmark::DoNotOptimize(t);
  }
  state.counters["result"] = static_cast<double>(result);
  state.counters["workers"] =
      static_cast<double>(db.engine().options().num_threads);
  if (db.engine().parallel_stats().queries == 0 &&
      db.engine().options().num_threads > 1) {
    state.SkipWithError("query did not take the parallel runtime");
  }
}

constexpr const char* kScanFilter =
    "MATCH (p:Person) WHERE p.name >= 'P1' AND p.name < 'P3' "
    "RETURN count(*) AS c";

void BM_ParallelScanFilter(benchmark::State& s) { RunQuery(s, kScanFilter); }
BENCHMARK(BM_ParallelScanFilter)->Arg(1)->Arg(2)->Arg(4);

constexpr const char* kTwoHop =
    "MATCH (a:Person)-[:FRIEND]->(b)-[:FRIEND]->(c) RETURN count(*) AS c";

void BM_ParallelTwoHop(benchmark::State& s) { RunQuery(s, kTwoHop); }
BENCHMARK(BM_ParallelTwoHop)->Arg(1)->Arg(2)->Arg(4);

constexpr const char* kGlobalAgg =
    "MATCH (a:Person)-[:FRIEND]->(b) "
    "RETURN count(*) AS c, min(a.name) AS mn, max(b.name) AS mx, "
    "count(DISTINCT b.name) AS d";

void BM_ParallelGlobalAgg(benchmark::State& s) { RunQuery(s, kGlobalAgg); }
BENCHMARK(BM_ParallelGlobalAgg)->Arg(1)->Arg(2)->Arg(4);

// ---- Parallel pipeline breakers --------------------------------------------
// These queries end in a breaker, so the merge stage — not the scan — is
// where the serial engine used to spend its single-threaded time: the
// local sorts + pairwise merge tree (ORDER BY), the per-partition
// MergeFrom chains (many-group aggregation), and the partitioned
// seen-sets (DISTINCT) are what /2 and /4 measure.

// No LIMIT: the full result survives, so this measures the local sorts
// plus the pairwise parallel merge tree end to end.
constexpr const char* kOrderBy =
    "MATCH (a:Person)-[:FRIEND]->(b) "
    "RETURN a.name AS x, b.name AS y ORDER BY x, y";

void BM_ParallelOrderBy(benchmark::State& s) { RunQuery(s, kOrderBy); }
BENCHMARK(BM_ParallelOrderBy)->Arg(1)->Arg(2)->Arg(4);

// SKIP/LIMIT push top-K into the per-worker local sorts, so the merge
// only ever sees skip+limit rows per run.
constexpr const char* kOrderByTopK =
    "MATCH (a:Person)-[:FRIEND]->(b) "
    "RETURN b.name AS y ORDER BY y DESC SKIP 10 LIMIT 25";

void BM_ParallelOrderByTopK(benchmark::State& s) { RunQuery(s, kOrderByTopK); }
BENCHMARK(BM_ParallelOrderByTopK)->Arg(1)->Arg(2)->Arg(4);

// ~2048 distinct group keys: the partitioned merge dominates, and the
// row count doubles as the check value (one row per group).
constexpr const char* kManyGroupAgg =
    "MATCH (a:Person)-[:FRIEND]->(b) "
    "RETURN a.name AS g, count(*) AS c, min(b.name) AS mn";

void BM_ParallelManyGroupAgg(benchmark::State& s) {
  RunQuery(s, kManyGroupAgg);
}
BENCHMARK(BM_ParallelManyGroupAgg)->Arg(1)->Arg(2)->Arg(4);

// DISTINCT name pairs at an intermediate WITH: the partitioned
// seen-sets dedupe ~all edges, then the count folds the survivors.
constexpr const char* kDistinct =
    "MATCH (a:Person)-[:FRIEND]->(b) "
    "WITH DISTINCT a.name AS x, b.name AS y RETURN count(*) AS c";

void BM_ParallelDistinct(benchmark::State& s) { RunQuery(s, kDistinct); }
BENCHMARK(BM_ParallelDistinct)->Arg(1)->Arg(2)->Arg(4);

}  // namespace
}  // namespace gqlite

GQLITE_BENCH_MAIN()
