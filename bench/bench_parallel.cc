// Morsel-driven parallel execution at 1/2/4 workers on the fan-out
// social graph: scan+filter, two-hop expand, and global aggregation —
// the three plan shapes the parallel runtime targets. The thread count
// is the benchmark argument (BM_Parallel*/T), so scaling is read
// straight off the report; on a multi-core machine the 4-worker rows
// should run >= 1.5x faster than the 1-worker rows for the scan+filter
// and aggregation cases.
//
// CI gating note: only the /1 (single-worker) rows are machine-portable
// — multi-worker speedups depend on the runner's core count, so the CI
// gate excludes /2 and /4 by name (see .github/workflows/ci.yml); the
// committed baseline still records them for local comparison.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace gqlite {
namespace {

/// Larger than bench_batch's graph: parallel speedup needs enough work
/// per morsel to amortize the per-range pipeline re-open.
GraphPtr ParallelGraph() {
  static GraphPtr g = [] {
    workload::SocialConfig cfg;
    cfg.num_people = 2048;
    cfg.avg_friends = 12;
    cfg.num_cities = 16;
    return workload::MakeSocialNetwork(cfg);
  }();
  return g;
}

void RunQuery(benchmark::State& state, const char* query) {
  EngineOptions opts;
  opts.num_threads = static_cast<size_t>(state.range(0));
  CypherEngine engine = bench::MakeEngine(ParallelGraph(), opts);
  int64_t rows = 0;
  for (auto _ : state) {
    Table t = bench::MustRun(engine, query);
    rows = t.rows()[0][0].AsInt();
    benchmark::DoNotOptimize(t);
  }
  state.counters["result"] = static_cast<double>(rows);
  state.counters["workers"] =
      static_cast<double>(engine.options().num_threads);
  if (engine.parallel_stats().queries == 0 &&
      engine.options().num_threads > 1) {
    state.SkipWithError("query did not take the parallel runtime");
  }
}

constexpr const char* kScanFilter =
    "MATCH (p:Person) WHERE p.name >= 'P1' AND p.name < 'P3' "
    "RETURN count(*) AS c";

void BM_ParallelScanFilter(benchmark::State& s) { RunQuery(s, kScanFilter); }
BENCHMARK(BM_ParallelScanFilter)->Arg(1)->Arg(2)->Arg(4);

constexpr const char* kTwoHop =
    "MATCH (a:Person)-[:FRIEND]->(b)-[:FRIEND]->(c) RETURN count(*) AS c";

void BM_ParallelTwoHop(benchmark::State& s) { RunQuery(s, kTwoHop); }
BENCHMARK(BM_ParallelTwoHop)->Arg(1)->Arg(2)->Arg(4);

constexpr const char* kGlobalAgg =
    "MATCH (a:Person)-[:FRIEND]->(b) "
    "RETURN count(*) AS c, min(a.name) AS mn, max(b.name) AS mx, "
    "count(DISTINCT b.name) AS d";

void BM_ParallelGlobalAgg(benchmark::State& s) { RunQuery(s, kGlobalAgg); }
BENCHMARK(BM_ParallelGlobalAgg)->Arg(1)->Arg(2)->Arg(4);

}  // namespace
}  // namespace gqlite

GQLITE_BENCH_MAIN()
