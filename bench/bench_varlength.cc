// Experiment E16 (DESIGN.md): variable-length path matching ("essentially
// transitive closure", §2) — range sweeps on chains and grids, plus the
// zero-length lower bound and the unbounded `*` on DAGs. The interesting
// shape: work grows with the number of rigid refinements × paths, and the
// relationship-isomorphism rule keeps the unbounded case finite.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace gqlite {
namespace {

void BM_ChainRangeSweep(benchmark::State& state) {
  // *1..k over a 256-node chain: result rows = sum over start positions.
  GraphPtr g = workload::MakeChain(256);
  Database db = bench::MakeDatabase(g);
  std::string q = "MATCH (a)-[:NEXT*1.." + std::to_string(state.range(0)) +
                  "]->(b) RETURN count(*) AS c";
  int64_t rows = 0;
  for (auto _ : state) {
    Table t = bench::MustRun(db, q);
    rows = t.rows()[0][0].AsInt();
    benchmark::DoNotOptimize(t);
  }
  state.counters["result_rows"] = static_cast<double>(rows);
}
BENCHMARK(BM_ChainRangeSweep)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_ChainUnbounded(benchmark::State& state) {
  // Unbounded `*` on chains of growing length: quadratic result size,
  // bounded by edge isomorphism.
  GraphPtr g = workload::MakeChain(static_cast<size_t>(state.range(0)));
  Database db = bench::MakeDatabase(g);
  int64_t rows = 0;
  for (auto _ : state) {
    Table t =
        bench::MustRun(db, "MATCH (a)-[:NEXT*]->(b) RETURN count(*) AS c");
    rows = t.rows()[0][0].AsInt();
    benchmark::DoNotOptimize(t);
  }
  state.counters["result_rows"] = static_cast<double>(rows);
}
BENCHMARK(BM_ChainUnbounded)->Arg(64)->Arg(128)->Arg(256);

void BM_GridPaths(benchmark::State& state) {
  // Directed grid: path counts between corners grow combinatorially with
  // the range bound.
  GraphPtr g = workload::MakeGrid(6, 6);
  Database db = bench::MakeDatabase(g);
  std::string q = "MATCH (a {row: 0, col: 0})-[*1.." +
                  std::to_string(state.range(0)) +
                  "]->(b {row: 5, col: 5}) RETURN count(*) AS c";
  int64_t rows = 0;
  for (auto _ : state) {
    Table t = bench::MustRun(db, q);
    rows = t.rows()[0][0].AsInt();
    benchmark::DoNotOptimize(t);
  }
  state.counters["paths"] = static_cast<double>(rows);
}
BENCHMARK(BM_GridPaths)->Arg(10)->Arg(11)->Arg(12);

void BM_ZeroLengthLowerBound(benchmark::State& state) {
  // *0..2: zero-length refinements bind the endpoints together — each
  // node contributes itself plus its neighbourhood.
  GraphPtr g = workload::MakeCycle(static_cast<size_t>(state.range(0)));
  Database db = bench::MakeDatabase(g);
  int64_t rows = 0;
  for (auto _ : state) {
    Table t = bench::MustRun(
        db, "MATCH (a)-[:NEXT*0..2]->(b) RETURN count(*) AS c");
    rows = t.rows()[0][0].AsInt();
    benchmark::DoNotOptimize(t);
  }
  state.counters["result_rows"] = static_cast<double>(rows);
}
BENCHMARK(BM_ZeroLengthLowerBound)->Arg(64)->Arg(256);

void BM_CitationTransitive(benchmark::State& state) {
  // The paper's CITES* shape on synthetic citation DAGs of growing size.
  workload::CitationConfig cfg;
  cfg.num_researchers = static_cast<size_t>(state.range(0));
  cfg.pubs_per_researcher = 3;
  cfg.avg_cites_per_pub = 1.5;
  GraphPtr g = workload::MakeCitationGraph(cfg);
  Database db = bench::MakeDatabase(g);
  for (auto _ : state) {
    Table t = bench::MustRun(
        db,
        "MATCH (p1:Publication)<-[:CITES*]-(p2:Publication) "
        "RETURN count(*) AS c");
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(BM_CitationTransitive)->Arg(20)->Arg(40)->Arg(80);

}  // namespace
}  // namespace gqlite

GQLITE_BENCH_MAIN()
