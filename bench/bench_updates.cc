// Experiment E17 (DESIGN.md): the update language of §2 — CREATE / SET /
// MERGE throughput, and MERGE's match-vs-create asymmetry (the same MERGE
// is a read when the pattern exists and a write when it does not).

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace gqlite {
namespace {

void BM_CreateNodes(benchmark::State& state) {
  for (auto _ : state) {
    Database db = bench::MakeEmptyDatabase();
    for (int64_t i = 0; i < state.range(0); ++i) {
      auto r = db.Execute("CREATE (:N {idx: " + std::to_string(i) + "})");
      if (!r.ok()) {
        state.SkipWithError(r.status().ToString().c_str());
        return;
      }
    }
    benchmark::DoNotOptimize(db.graph().NumNodes());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CreateNodes)->Arg(100)->Arg(1000);

void BM_CreateChainBatch(benchmark::State& state) {
  // One query creating a relationship per driving row (UNWIND + MATCH).
  for (auto _ : state) {
    Database db = bench::MakeEmptyDatabase();
    auto seed = db.Execute("UNWIND range(0, " +
                               std::to_string(state.range(0)) +
                               ") AS i CREATE (:N {idx: i})");
    if (!seed.ok()) {
      state.SkipWithError(seed.status().ToString().c_str());
      return;
    }
    auto wire = db.Execute(
        "MATCH (a:N), (b:N) WHERE b.idx = a.idx + 1 "
        "CREATE (a)-[:NEXT]->(b)");
    if (!wire.ok()) {
      state.SkipWithError(wire.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(db.graph().NumRels());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CreateChainBatch)->Arg(64)->Arg(256);

void BM_SetProperties(benchmark::State& state) {
  Database db = bench::MakeEmptyDatabase();
  auto seed = db.Execute("UNWIND range(0, " +
                             std::to_string(state.range(0)) +
                             ") AS i CREATE (:N {idx: i})");
  if (!seed.ok()) {
    state.SkipWithError(seed.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    auto r = db.Execute("MATCH (n:N) SET n.touched = n.idx * 2");
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(r->stats.properties_set);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SetProperties)->Arg(100)->Arg(1000);

void BM_MergeAllMatch(benchmark::State& state) {
  // Every MERGE matches: pure read path.
  Database db = bench::MakeEmptyDatabase();
  auto seed = db.Execute("UNWIND range(0, 99) AS i CREATE (:K {k: i})");
  if (!seed.ok()) {
    state.SkipWithError(seed.status().ToString().c_str());
    return;
  }
  int64_t i = 0;
  for (auto _ : state) {
    auto r = db.Execute("MERGE (n:K {k: " + std::to_string(i % 100) +
                            "}) RETURN n");
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    ++i;
    benchmark::DoNotOptimize(r->table.NumRows());
  }
}
BENCHMARK(BM_MergeAllMatch);

void BM_MergeAllCreate(benchmark::State& state) {
  // Every MERGE misses: write path (match attempt + create).
  Database db = bench::MakeEmptyDatabase();
  int64_t i = 0;
  for (auto _ : state) {
    auto r = db.Execute("MERGE (n:K {k: " + std::to_string(i++) +
                            "}) RETURN n");
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(r->table.NumRows());
  }
}
BENCHMARK(BM_MergeAllCreate);

void BM_DetachDelete(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    GraphPtr g = workload::MakeSocialNetwork(
        {static_cast<size_t>(state.range(0)), 6.0, 5, 7});
    Database db = bench::MakeDatabase(g);
    state.ResumeTiming();
    auto r = db.Execute("FROM GRAPH bench MATCH (p:Person) "
                            "DETACH DELETE p");
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(r->stats.nodes_deleted);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DetachDelete)->Arg(500)->Arg(2000);

}  // namespace
}  // namespace gqlite

GQLITE_BENCH_MAIN()
