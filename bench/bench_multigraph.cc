// Experiment E18 (DESIGN.md): Cypher 10 multiple graphs and query
// composition (§6, Example 6.1) — the friend-sharing projection and the
// composed same-city filter, swept over social-network size. Also
// verifies the projected graph's shape once before timing.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace gqlite {
namespace {

Database MakeMultiGraphEngine(size_t people) {
  workload::SocialConfig cfg;
  cfg.num_people = people;
  cfg.avg_friends = 6;
  cfg.num_cities = 10;
  cfg.seed = 99;
  GraphPtr soc = workload::MakeSocialNetwork(cfg);
  Database db = bench::MakeEmptyDatabase();
  db.RegisterUrl("hdfs://cluster/soc_network", soc);
  db.RegisterUrl("bolt://cluster/citizens", soc);
  return db;
}

const char* kProjection =
    "FROM GRAPH soc_net AT \"hdfs://cluster/soc_network\" "
    "MATCH (a)-[r1:FRIEND]-()-[r2:FRIEND]-(b) "
    "WHERE abs(r2.since - r1.since) < $duration AND a.name < b.name "
    "WITH DISTINCT a, b "
    "RETURN GRAPH friends OF (a)-[:SHARE_FRIEND]->(b)";

const char* kComposition =
    "QUERY GRAPH friends "
    "MATCH (a)-[:SHARE_FRIEND]-(b) "
    "WITH a.name AS an, b.name AS bn WHERE an < bn "
    "FROM GRAPH register AT \"bolt://cluster/citizens\" "
    "MATCH (a2:Person {name: an})-[:IN]->(c:City)<-[:IN]-"
    "(b2:Person {name: bn}) "
    "RETURN count(*) AS sameCityPairs";

void BM_Example61Projection(benchmark::State& state) {
  Database db =
      MakeMultiGraphEngine(static_cast<size_t>(state.range(0)));
  ValueMap params;
  params["duration"] = Value::Int(5);
  size_t projected_rels = 0;
  for (auto _ : state) {
    auto r = db.Execute(kProjection, params);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    projected_rels = r->graphs[0].second->NumRels();
    benchmark::DoNotOptimize(r);
  }
  state.counters["share_friend_rels"] = static_cast<double>(projected_rels);
}
BENCHMARK(BM_Example61Projection)->Arg(100)->Arg(300)->Arg(1000);

void BM_Example61Composition(benchmark::State& state) {
  Database db =
      MakeMultiGraphEngine(static_cast<size_t>(state.range(0)));
  ValueMap params;
  params["duration"] = Value::Int(5);
  auto seed = db.Execute(kProjection, params);
  if (!seed.ok()) {
    state.SkipWithError(seed.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    auto r = db.Execute(kComposition);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_Example61Composition)->Arg(60)->Arg(120);

}  // namespace
}  // namespace gqlite

GQLITE_BENCH_MAIN()
