// Experiments E12–E13 (DESIGN.md): configurable pattern-matching
// morphisms (§8 future work; §4.2 complexity discussion). Cypher 9's
// relationship isomorphism keeps variable-length result sets finite; the
// homomorphism alternative explodes (we cap it), and node isomorphism
// prunes harder. The benchmark reports match counts alongside timings so
// the semantic difference is visible, and verifies the §4.2 self-loop
// counts.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace gqlite {
namespace {

void RunMorphism(benchmark::State& state, Morphism m, const char* query,
                 GraphPtr g, int64_t cap = 6) {
  EngineOptions opts;
  opts.morphism = m;
  opts.max_var_length = cap;
  Database db = bench::MakeDatabase(g, opts);
  int64_t rows = 0;
  for (auto _ : state) {
    Table t = bench::MustRun(db, query);
    rows = t.rows()[0][0].AsInt();
    benchmark::DoNotOptimize(t);
  }
  state.counters["matches"] = static_cast<double>(rows);
}

const char* kCliqueQuery = "MATCH (a)-[*1..3]->(b) RETURN count(*) AS c";

void BM_CliqueEdgeIso(benchmark::State& state) {
  RunMorphism(state, Morphism::kEdgeIsomorphism, kCliqueQuery,
              workload::MakeClique(static_cast<size_t>(state.range(0))));
}
void BM_CliqueNodeIso(benchmark::State& state) {
  RunMorphism(state, Morphism::kNodeIsomorphism, kCliqueQuery,
              workload::MakeClique(static_cast<size_t>(state.range(0))));
}
void BM_CliqueHomomorphism(benchmark::State& state) {
  RunMorphism(state, Morphism::kHomomorphism, kCliqueQuery,
              workload::MakeClique(static_cast<size_t>(state.range(0))),
              /*cap=*/3);
}

BENCHMARK(BM_CliqueEdgeIso)->Arg(4)->Arg(5)->Arg(6);
BENCHMARK(BM_CliqueNodeIso)->Arg(4)->Arg(5)->Arg(6);
BENCHMARK(BM_CliqueHomomorphism)->Arg(4)->Arg(5)->Arg(6);

const char* kCycleQuery = "MATCH (x)-[*1..8]->(x) RETURN count(*) AS c";

void BM_CycleEdgeIso(benchmark::State& state) {
  RunMorphism(state, Morphism::kEdgeIsomorphism, kCycleQuery,
              workload::MakeCycle(static_cast<size_t>(state.range(0))), 8);
}
void BM_CycleHomomorphism(benchmark::State& state) {
  RunMorphism(state, Morphism::kHomomorphism, kCycleQuery,
              workload::MakeCycle(static_cast<size_t>(state.range(0))), 8);
}

BENCHMARK(BM_CycleEdgeIso)->Arg(4)->Arg(8);
BENCHMARK(BM_CycleHomomorphism)->Arg(4)->Arg(8);

}  // namespace
}  // namespace gqlite

int main(int argc, char** argv) {
  // E12 verification before timing: the §4.2 self-loop example.
  {
    using namespace gqlite;
    workload::SelfLoop loop = workload::MakeSelfLoopGraph();
    Database iso = bench::MakeDatabase(loop.graph);
    Table t = bench::MustRun(iso, "MATCH (x)-[*0..]->(x) RETURN count(*) AS c");
    EngineOptions hom_opts;
    hom_opts.morphism = Morphism::kHomomorphism;
    hom_opts.max_var_length = 10;
    Database hom = bench::MakeDatabase(loop.graph, hom_opts);
    Table t2 =
        bench::MustRun(hom, "MATCH (x)-[*0..]->(x) RETURN count(*) AS c");
    std::printf(
        "E12 self-loop: edge-isomorphism matches = %lld (paper: 2); "
        "homomorphism capped at 10 traversals = %lld (unbounded without "
        "the cap)\n",
        static_cast<long long>(t.rows()[0][0].AsInt()),
        static_cast<long long>(t2.rows()[0][0].AsInt()));
    if (t.rows()[0][0].AsInt() != 2) return 1;
  }
  gqlite::bench::ConsumeGqliteBenchFlags(&argc, argv);
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
