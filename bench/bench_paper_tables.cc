// Experiments E1–E6 (DESIGN.md): regenerates every table the paper prints
// for the §3 worked example — Figure 2a, Figure 2b, the two inline
// binding tables, and the final result — and checks them cell by cell
// against the paper. Exits non-zero on any mismatch.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/frontend/parser.h"
#include "src/interp/interpreter.h"

namespace gqlite {
namespace {

using bench::CheckTable;

Table MakeExpected(std::vector<std::string> fields,
                   std::vector<ValueList> rows) {
  Table t(std::move(fields));
  for (auto& r : rows) t.AddRow(std::move(r));
  return t;
}

int RunAll() {
  workload::PaperFigure1 fig = workload::MakePaperFigure1Graph();
  auto N = [&](int i) { return Value::Node(fig.n[i]); };
  Database db = bench::MakeDatabase(fig.graph);

  bool all_ok = true;

  // E1: the graph itself.
  std::printf("[%s] E1 Figure 1 graph (10 nodes, 11 relationships)\n",
              fig.graph->NumNodes() == 10 && fig.graph->NumRels() == 11
                  ? "OK"
                  : "MISMATCH");
  all_ok &= fig.graph->NumNodes() == 10 && fig.graph->NumRels() == 11;

  // E2: Figure 2a — bindings after OPTIONAL MATCH line 2.
  {
    Table got = bench::MustRun(
        db,
        "MATCH (r:Researcher) "
        "OPTIONAL MATCH (r)-[:SUPERVISES]->(s:Student) RETURN r, s");
    Table want = MakeExpected({"r", "s"}, {{N(1), Value::Null()},
                                           {N(6), N(7)},
                                           {N(6), N(8)},
                                           {N(10), N(7)}});
    all_ok &= CheckTable("E2 Figure 2a (r x s bindings)", got, want);
    std::printf("%s\n", got.ToString(fig.graph.get()).c_str());
  }

  // E3: Figure 2b — WITH aggregation.
  {
    Table got = bench::MustRun(
        db,
        "MATCH (r:Researcher) "
        "OPTIONAL MATCH (r)-[:SUPERVISES]->(s:Student) "
        "WITH r, count(s) AS studentsSupervised "
        "RETURN r, studentsSupervised");
    Table want = MakeExpected({"r", "studentsSupervised"},
                              {{N(1), Value::Int(0)},
                               {N(6), Value::Int(2)},
                               {N(10), Value::Int(1)}});
    all_ok &= CheckTable("E3 Figure 2b (WITH r, count(s))", got, want);
    std::printf("%s\n", got.ToString(fig.graph.get()).c_str());
  }

  // E4: inline table after MATCH line 4 (Thor drops out).
  {
    Table got = bench::MustRun(
        db,
        "MATCH (r:Researcher) "
        "OPTIONAL MATCH (r)-[:SUPERVISES]->(s:Student) "
        "WITH r, count(s) AS studentsSupervised "
        "MATCH (r)-[:AUTHORS]->(p1:Publication) "
        "RETURN r, studentsSupervised, p1");
    Table want = MakeExpected({"r", "studentsSupervised", "p1"},
                              {{N(1), Value::Int(0), N(2)},
                               {N(6), Value::Int(2), N(5)},
                               {N(6), Value::Int(2), N(9)}});
    all_ok &= CheckTable("E4 inline table after MATCH line 4", got, want);
  }

  // E5: inline table after OPTIONAL MATCH line 5, with the two identical
  // dagger rows (bag semantics of the variable-length CITES*).
  {
    Table got = bench::MustRun(
        db,
        "MATCH (r:Researcher) "
        "OPTIONAL MATCH (r)-[:SUPERVISES]->(s:Student) "
        "WITH r, count(s) AS studentsSupervised "
        "MATCH (r)-[:AUTHORS]->(p1:Publication) "
        "OPTIONAL MATCH (p1)<-[:CITES*]-(p2:Publication) "
        "RETURN r, studentsSupervised, p1, p2");
    Table want = MakeExpected(
        {"r", "studentsSupervised", "p1", "p2"},
        {{N(1), Value::Int(0), N(2), N(4)},
         {N(1), Value::Int(0), N(2), N(9)},   // † row 1
         {N(1), Value::Int(0), N(2), N(5)},
         {N(1), Value::Int(0), N(2), N(9)},   // † row 2
         {N(6), Value::Int(2), N(5), N(9)},
         {N(6), Value::Int(2), N(9), Value::Null()}});
    all_ok &= CheckTable("E5 inline table after line 5 (with daggers)", got,
                         want);
    std::printf("%s\n", got.ToString(fig.graph.get()).c_str());
  }

  // E6: the final RETURN table.
  {
    Table got = bench::MustRun(
        db,
        "MATCH (r:Researcher) "
        "OPTIONAL MATCH (r)-[:SUPERVISES]->(s:Student) "
        "WITH r, count(s) AS studentsSupervised "
        "MATCH (r)-[:AUTHORS]->(p1:Publication) "
        "OPTIONAL MATCH (p1)<-[:CITES*]-(p2:Publication) "
        "RETURN r.name, studentsSupervised, "
        "count(DISTINCT p2) AS citedCount");
    Table want = MakeExpected(
        {"r.name", "studentsSupervised", "citedCount"},
        {{Value::String("Nils"), Value::Int(0), Value::Int(3)},
         {Value::String("Elin"), Value::Int(2), Value::Int(1)}});
    all_ok &= CheckTable("E6 final result (Nils 0 3 / Elin 2 1)", got, want);
    std::printf("%s\n", got.ToString().c_str());
  }

  return all_ok ? 0 : 1;
}

}  // namespace
}  // namespace gqlite

int main() { return gqlite::RunAll(); }
