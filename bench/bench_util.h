#ifndef GQLITE_BENCH_BENCH_UTIL_H_
#define GQLITE_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>

#include "src/core/database.h"
#include "src/workload/generators.h"
#include "src/workload/paper_graphs.h"

namespace gqlite {
namespace bench {

/// Set by the shared `--no-plan-cache` flag (GQLITE_BENCH_MAIN): disables
/// plan reuse in every engine built through MakeDatabase, restoring
/// plan-per-execution behaviour so runs stay comparable with pre-cache
/// baselines.
inline bool g_no_plan_cache = false;

/// Set by the shared `--no-batch` flag: forces batch_size = 1 in every
/// engine built through MakeDatabase, restoring tuple-at-a-time Volcano
/// execution so runs stay comparable with pre-batching baselines.
inline bool g_no_batch = false;

/// Set by the shared `--threads N` / `--threads=N` flag: worker count of
/// the morsel-driven parallel runtime for every engine built through
/// MakeDatabase (0 = leave each benchmark's own EngineOptions untouched).
inline size_t g_num_threads = 0;

/// Parses the `--threads` value strictly: a benchmark silently running at
/// the wrong worker count measures something other than what the
/// operator asked for (the same failure mode GQLITE_THREADS parsing
/// rejects).
inline size_t ParseThreadsFlagOrDie(const char* text) {
  char* end = nullptr;
  long long v = std::strtoll(text, &end, 10);
  if (end == text || *end != '\0' || v <= 0 || v > 256) {
    std::fprintf(stderr, "--threads: \"%s\" is not a worker count in "
                         "[1, 256]\n", text);
    std::exit(2);
  }
  return static_cast<size_t>(v);
}

/// Strips gqlite-specific flags from argv before benchmark::Initialize
/// (which rejects flags it does not know).
inline void ConsumeGqliteBenchFlags(int* argc, char** argv) {
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    std::string_view arg(argv[i]);
    if (arg == "--no-plan-cache") {
      g_no_plan_cache = true;
    } else if (arg == "--no-batch") {
      g_no_batch = true;
    } else if (arg == "--threads" && i + 1 < *argc) {
      g_num_threads = ParseThreadsFlagOrDie(argv[++i]);
    } else if (arg.rfind("--threads=", 0) == 0) {
      g_num_threads =
          ParseThreadsFlagOrDie(argv[i] + sizeof("--threads=") - 1);
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
}

/// Opens an empty in-memory database with the shared bench flags
/// applied. Aborts on failure: benchmarks must not silently measure a
/// misconfigured engine.
inline Database MakeEmptyDatabase(EngineOptions opts = {}) {
  if (g_no_plan_cache) opts.use_plan_cache = false;
  if (g_no_batch) opts.batch_size = 1;
  if (g_num_threads > 0) opts.num_threads = g_num_threads;
  Result<Database> db = Database::OpenInMemory(opts);
  if (!db.ok()) {
    std::fprintf(stderr, "OpenInMemory failed: %s\n",
                 db.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(*db);
}

/// Builds an in-memory database whose default graph is `g` — both the
/// implicit graph plain `db.Execute(query)` sees and the `bench` named
/// graph the MustRun `FROM GRAPH bench` prefix selects.
inline Database MakeDatabase(GraphPtr g, EngineOptions opts = {}) {
  Database db = MakeEmptyDatabase(opts);
  Status bound = db.engine().set_default_graph(g);
  if (!bound.ok()) {
    std::fprintf(stderr, "set_default_graph failed: %s\n",
                 bound.ToString().c_str());
    std::exit(1);
  }
  db.RegisterGraph("bench", std::move(g));
  return db;
}

/// Runs a query against a named graph and aborts the benchmark binary on
/// error (benchmarks must not silently measure failures).
inline Table MustRun(Database& db, const std::string& query) {
  auto r = db.Execute("FROM GRAPH bench " + query);
  if (!r.ok()) {
    std::fprintf(stderr, "query failed: %s\n  %s\n", query.c_str(),
                 r.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(r->table);
}

/// Verification helper for the table-reproduction binaries: compares a
/// measured table against the paper's printed rows and reports.
inline bool CheckTable(const char* experiment, const Table& measured,
                       const Table& expected) {
  bool ok = measured.SameBag(expected);
  std::printf("[%s] %s\n", ok ? "OK" : "MISMATCH", experiment);
  if (!ok) {
    std::printf("--- paper expects ---\n%s--- measured ---\n%s",
                expected.ToString().c_str(), measured.ToString().c_str());
  }
  return ok;
}

}  // namespace bench
}  // namespace gqlite

/// Drop-in replacement for BENCHMARK_MAIN() that understands the shared
/// gqlite flags (currently `--no-plan-cache`). Benchmarks built on the
/// Google Benchmark harness use this instead of BENCHMARK_MAIN().
#define GQLITE_BENCH_MAIN()                                             \
  int main(int argc, char** argv) {                                     \
    ::gqlite::bench::ConsumeGqliteBenchFlags(&argc, argv);              \
    ::benchmark::Initialize(&argc, argv);                               \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
    ::benchmark::RunSpecifiedBenchmarks();                              \
    return 0;                                                           \
  }

#endif  // GQLITE_BENCH_BENCH_UTIL_H_
