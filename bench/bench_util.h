#ifndef GQLITE_BENCH_BENCH_UTIL_H_
#define GQLITE_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/core/engine.h"
#include "src/workload/generators.h"
#include "src/workload/paper_graphs.h"

namespace gqlite {
namespace bench {

/// Builds an engine whose default graph is `g`.
inline CypherEngine MakeEngine(GraphPtr g, EngineOptions opts = {}) {
  CypherEngine engine(opts);
  engine.catalog().RegisterGraph(GraphCatalog::kDefaultGraphName, g);
  engine.catalog().RegisterGraph("bench", g);
  return engine;
}

/// Runs a query against a named graph and aborts the benchmark binary on
/// error (benchmarks must not silently measure failures).
inline Table MustRun(CypherEngine& engine, const std::string& query) {
  auto r = engine.Execute("FROM GRAPH bench " + query);
  if (!r.ok()) {
    std::fprintf(stderr, "query failed: %s\n  %s\n", query.c_str(),
                 r.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(r->table);
}

/// Verification helper for the table-reproduction binaries: compares a
/// measured table against the paper's printed rows and reports.
inline bool CheckTable(const char* experiment, const Table& measured,
                       const Table& expected) {
  bool ok = measured.SameBag(expected);
  std::printf("[%s] %s\n", ok ? "OK" : "MISMATCH", experiment);
  if (!ok) {
    std::printf("--- paper expects ---\n%s--- measured ---\n%s",
                expected.ToString().c_str(), measured.ToString().c_str());
  }
  return ok;
}

}  // namespace bench
}  // namespace gqlite

#endif  // GQLITE_BENCH_BENCH_UTIL_H_
