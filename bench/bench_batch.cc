// Batched vs tuple-at-a-time execution on fan-out-heavy graphs: the same
// query runs at the default morsel size (1024) and at batch size 1 (the
// degenerate per-tuple mode), so the gap IS the dispatch/bookkeeping
// overhead the vectorized runtime amortizes. This suite is part of the CI
// regression gate (bench/tools/compare.py against bench/baselines/): a
// regression in either mode, or a collapse of the batched advantage,
// shows up as a >15% normalized slowdown.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace gqlite {
namespace {

/// Shared fan-out-heavy graph: 256 people averaging 8 FRIEND edges each
/// (so a two-hop pattern explodes to ~64 rows per source), plus cities.
GraphPtr FanoutGraph() {
  static GraphPtr g = [] {
    workload::SocialConfig cfg;
    cfg.num_people = 256;
    cfg.avg_friends = 8;
    cfg.num_cities = 8;
    return workload::MakeSocialNetwork(cfg);
  }();
  return g;
}

void RunQuery(benchmark::State& state, const char* query,
              size_t batch_size) {
  EngineOptions opts;
  opts.batch_size = batch_size;
  Database db = bench::MakeDatabase(FanoutGraph(), opts);
  int64_t rows = 0;
  for (auto _ : state) {
    Table t = bench::MustRun(db, query);
    rows = t.rows()[0][0].AsInt();
    benchmark::DoNotOptimize(t);
  }
  state.counters["result"] = static_cast<double>(rows);
  // Effective size: --no-batch / GQLITE_BATCH_SIZE override the request.
  size_t effective = db.engine().options().batch_size;
  state.SetLabel(effective == 1
                     ? "tuple-at-a-time"
                     : "morsel " + std::to_string(effective));
}

constexpr const char* kTwoHop =
    "MATCH (a:Person)-[:FRIEND]->(b)-[:FRIEND]->(c) RETURN count(*) AS c";

void BM_TwoHopBatched(benchmark::State& s) { RunQuery(s, kTwoHop, 1024); }
void BM_TwoHopPerTuple(benchmark::State& s) { RunQuery(s, kTwoHop, 1); }
BENCHMARK(BM_TwoHopBatched);
BENCHMARK(BM_TwoHopPerTuple);

constexpr const char* kFilterExpand =
    "MATCH (a:Person)-[:FRIEND]-(b) WHERE b.name < 'P2' "
    "RETURN count(*) AS c";

void BM_FilterExpandBatched(benchmark::State& s) {
  RunQuery(s, kFilterExpand, 1024);
}
void BM_FilterExpandPerTuple(benchmark::State& s) {
  RunQuery(s, kFilterExpand, 1);
}
BENCHMARK(BM_FilterExpandBatched);
BENCHMARK(BM_FilterExpandPerTuple);

constexpr const char* kVarLength =
    "MATCH (a:Person)-[:FRIEND*1..2]-(b) RETURN count(*) AS c";

void BM_VarLengthBatched(benchmark::State& s) { RunQuery(s, kVarLength, 1024); }
void BM_VarLengthPerTuple(benchmark::State& s) { RunQuery(s, kVarLength, 1); }
BENCHMARK(BM_VarLengthBatched);
BENCHMARK(BM_VarLengthPerTuple);

constexpr const char* kUnwind =
    "UNWIND range(1, 4096) AS x RETURN count(*) AS c";

void BM_UnwindBatched(benchmark::State& s) { RunQuery(s, kUnwind, 1024); }
void BM_UnwindPerTuple(benchmark::State& s) { RunQuery(s, kUnwind, 1); }
BENCHMARK(BM_UnwindBatched);
BENCHMARK(BM_UnwindPerTuple);

}  // namespace
}  // namespace gqlite

GQLITE_BENCH_MAIN()
