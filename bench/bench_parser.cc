// Experiment E20 (DESIGN.md): frontend throughput over a corpus covering
// the Figure 3 and Figure 5 grammars — tokenizer, parser, analyzer and
// the unparse round-trip.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/frontend/analyzer.h"
#include "src/frontend/ast_printer.h"
#include "src/frontend/lexer.h"
#include "src/frontend/parser.h"

namespace gqlite {
namespace {

const char* kCorpus[] = {
    "MATCH (n) RETURN n",
    "MATCH (a:Person {name: 'x'})-[r:KNOWS*1..3 {since: 1985}]->(b) "
    "WHERE a.age > 30 AND b.name STARTS WITH 'A' RETURN a, r, b",
    "MATCH (r:Researcher) OPTIONAL MATCH (r)-[:SUPERVISES]->(s:Student) "
    "WITH r, count(s) AS c MATCH (r)-[:AUTHORS]->(p) "
    "OPTIONAL MATCH (p)<-[:CITES*]-(q) RETURN r.name, c, "
    "count(DISTINCT q) AS cited",
    "MATCH (svc:Service)<-[:DEPENDS_ON*]-(dep:Service) RETURN svc, "
    "count(DISTINCT dep) AS dependents ORDER BY dependents DESC LIMIT 1",
    "MATCH (h:AccountHolder)-[:HAS]->(p) WHERE p:SSN OR p:PhoneNumber "
    "WITH p, collect(h.uniqueId) AS hs, count(*) AS n WHERE n > 1 "
    "RETURN hs, labels(p) AS info, n",
    "UNWIND [1, 2, 3] AS x WITH x WHERE x > 1 RETURN x * 2 AS y "
    "ORDER BY y DESC SKIP 1 LIMIT 10",
    "MATCH (a) RETURN CASE a.v WHEN 1 THEN 'one' WHEN 2 THEN 'two' "
    "ELSE 'many' END AS label, [x IN range(1, 10) WHERE x % 2 = 0 | x ^ 2] "
    "AS squares",
    "CREATE (a:A {x: 1})-[:T {w: 2.5}]->(b:B) SET a.y = [1, 2], b:Marked "
    "REMOVE a.x",
    "MERGE (c:City {name: 'Oslo'}) ON CREATE SET c.new = true "
    "ON MATCH SET c.seen = coalesce(c.seen, 0) + 1",
    "MATCH (a:X) RETURN a.v AS v UNION ALL MATCH (b:Y) RETURN b.v AS v",
    "FROM GRAPH soc_net AT \"hdfs://x/y\" MATCH (a)-[r1:F]-()-[r2:F]-(b) "
    "WHERE abs(r2.since - r1.since) < $d WITH DISTINCT a, b "
    "RETURN GRAPH friends OF (a)-[:SHARE]->(b)",
    "MATCH (x) WHERE x.when >= date('2018-06-10') AND "
    "x.dur < duration('P1Y2M') RETURN x.when + duration('P1D') AS next",
};

void BM_Tokenize(benchmark::State& state) {
  size_t bytes = 0;
  for (auto _ : state) {
    for (const char* q : kCorpus) {
      auto toks = Tokenize(q);
      benchmark::DoNotOptimize(toks);
      bytes += std::string_view(q).size();
    }
  }
  state.SetBytesProcessed(static_cast<int64_t>(bytes));
}
BENCHMARK(BM_Tokenize);

void BM_Parse(benchmark::State& state) {
  size_t bytes = 0;
  for (auto _ : state) {
    for (const char* q : kCorpus) {
      auto ast = ParseQuery(q);
      if (!ast.ok()) {
        state.SkipWithError(ast.status().ToString().c_str());
        return;
      }
      benchmark::DoNotOptimize(ast);
      bytes += std::string_view(q).size();
    }
  }
  state.SetBytesProcessed(static_cast<int64_t>(bytes));
}
BENCHMARK(BM_Parse);

void BM_ParseAnalyze(benchmark::State& state) {
  for (auto _ : state) {
    for (const char* q : kCorpus) {
      auto ast = ParseQuery(q);
      if (!ast.ok()) {
        state.SkipWithError(ast.status().ToString().c_str());
        return;
      }
      auto info = Analyze(*ast);
      benchmark::DoNotOptimize(info);
    }
  }
}
BENCHMARK(BM_ParseAnalyze);

void BM_UnparseRoundTrip(benchmark::State& state) {
  std::vector<ast::Query> parsed;
  for (const char* q : kCorpus) {
    auto r = ParseQuery(q);
    parsed.push_back(std::move(r).value());
  }
  for (auto _ : state) {
    for (const auto& q : parsed) {
      std::string text = UnparseQuery(q);
      benchmark::DoNotOptimize(text);
    }
  }
}
BENCHMARK(BM_UnparseRoundTrip);

}  // namespace
}  // namespace gqlite

GQLITE_BENCH_MAIN()
