// Experiment E19 (DESIGN.md): Cypher 10 temporal types (§6) — parse,
// format, compare and add micro-benchmarks, plus an end-to-end query mix.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/temporal/temporal_parse.h"

namespace gqlite {
namespace {

void BM_ParseDate(benchmark::State& state) {
  for (auto _ : state) {
    auto d = ParseDate("2018-06-10");
    benchmark::DoNotOptimize(d);
  }
}
BENCHMARK(BM_ParseDate);

void BM_ParseDateTime(benchmark::State& state) {
  for (auto _ : state) {
    auto d = ParseZonedDateTime("2018-06-10T14:30:00.123456789+02:00");
    benchmark::DoNotOptimize(d);
  }
}
BENCHMARK(BM_ParseDateTime);

void BM_ParseDuration(benchmark::State& state) {
  for (auto _ : state) {
    auto d = ParseDuration("P1Y2M10DT2H30M14.5S");
    benchmark::DoNotOptimize(d);
  }
}
BENCHMARK(BM_ParseDuration);

void BM_DateArithmetic(benchmark::State& state) {
  Date d = Date::FromYmd(2018, 1, 31);
  Duration month = Duration::Make(1, 0, 0, 0);
  for (auto _ : state) {
    d = AddDuration(d, month);
    benchmark::DoNotOptimize(d);
  }
}
BENCHMARK(BM_DateArithmetic);

void BM_FormatDateTime(benchmark::State& state) {
  ZonedDateTime dt{{Date::FromYmd(2018, 6, 10), LocalTime::FromHms(14, 30, 0)},
                   7200};
  for (auto _ : state) {
    std::string s = dt.ToString();
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_FormatDateTime);

void BM_TemporalQueryMix(benchmark::State& state) {
  // End to end: events with datetime properties, range filters and
  // duration arithmetic inside a query.
  auto g = std::make_shared<PropertyGraph>();
  for (int i = 0; i < 365; ++i) {
    Date day = AddDuration(Date::FromYmd(2018, 1, 1),
                           Duration::Make(0, i, 0, 0));
    g->CreateNode({"Event"}, {{"on", Value::Temporal(day)},
                              {"idx", Value::Int(i)}});
  }
  Database db = bench::MakeDatabase(g);
  for (auto _ : state) {
    Table t = bench::MustRun(
        db,
        "MATCH (e:Event) WHERE e.on >= date('2018-06-01') AND "
        "e.on < date('2018-06-01') + duration('P1M') "
        "RETURN count(*) AS june");
    if (t.rows()[0][0].AsInt() != 30) {
      state.SkipWithError("wrong June day count");
      return;
    }
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(BM_TemporalQueryMix);

}  // namespace
}  // namespace gqlite

GQLITE_BENCH_MAIN()
