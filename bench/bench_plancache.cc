// Plan-cache benchmark: cold vs warm throughput on repeated
// parameterized queries (§2 motivates built-in parameters precisely so
// plans can be reused across calls). Three rungs per planner mode:
//
//   * Cold  — plan cache disabled: every query pays
//             parse + analyze + plan + execute (the pre-cache behaviour,
//             also reachable everywhere via --no-plan-cache);
//   * WarmText — plan cache on, query arrives as text with a *different
//             literal each time*: auto-parameterization canonicalizes the
//             text so all variants share one plan (parse + cache hit +
//             execute);
//   * WarmPrepared — Prepare once, Execute per call with changing
//             parameters: the full warm path (execute only).
//
// The workload is a five-hop chain anchored on a highly selective label
// (four :Hub nodes in a 64-node out-degree-1 ring, so each execution
// walks exactly one path): execution is cheap and the frontend + planner
// are a large share of the cold cost — the regime where a plan cache
// pays. Target: WarmPrepared ≥ 2× Cold throughput.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace gqlite {
namespace {

constexpr int64_t kPeople = 64;
constexpr int64_t kHubs = 4;

GraphPtr MakeRing() {
  auto g = std::make_shared<PropertyGraph>();
  std::vector<NodeId> nodes;
  nodes.reserve(kPeople);
  for (int64_t i = 0; i < kPeople; ++i) {
    std::vector<std::string> labels = {"P"};
    if (i < kHubs) labels.push_back("Hub");
    nodes.push_back(g->CreateNode(labels, {{"id", Value::Int(i)}}));
  }
  for (int64_t i = 0; i < kPeople; ++i) {
    g->CreateRelationship(nodes[i], nodes[(i + 1) % kPeople], "K").value();
  }
  return g;
}

// A five-hop chain with WHERE conjuncts: real frontend + planner work
// (anchor search over six positions, filter placement), one-path
// execution.
std::string QueryWithLiteral(int64_t id) {
  std::string lit = std::to_string(id);
  return "MATCH (a:Hub {id: " + lit +
         "})-[:K]->(n1)-[:K]->(n2)-[:K]->(n3)-[:K]->(n4)-[:K]->(n5) "
         "WHERE n1.id <> " + lit +
         " AND n3.id >= 0 RETURN count(n5) AS n";
}

const char* kParamQuery =
    "MATCH (a:Hub {id: $id})-[:K]->(n1)-[:K]->(n2)-[:K]->(n3)-[:K]->(n4)"
    "-[:K]->(n5) WHERE n1.id <> $id AND n3.id >= 0 "
    "RETURN count(n5) AS n";

int64_t MustCount(Result<QueryResult> r) {
  if (!r.ok()) {
    std::fprintf(stderr, "bench query failed: %s\n",
                 r.status().ToString().c_str());
    std::exit(1);
  }
  return r->table.rows()[0][0].AsInt();
}

/// The priming run must see the ring: a zero count means the engine is
/// not actually wired to the workload graph and the benchmark would
/// silently time an empty-graph no-op.
int64_t MustBeNonEmpty(int64_t count) {
  if (count <= 0) {
    std::fprintf(stderr, "bench workload is empty (count=%lld)\n",
                 static_cast<long long>(count));
    std::exit(1);
  }
  return count;
}

EngineOptions Opts(PlannerOptions::Mode planner, bool cache) {
  EngineOptions opts;
  opts.planner = planner;
  opts.use_plan_cache = cache;
  return opts;
}

void BM_Cold(benchmark::State& state, PlannerOptions::Mode planner) {
  Database db = bench::MakeDatabase(MakeRing(), Opts(planner, false));
  MustBeNonEmpty(MustCount(db.Execute(QueryWithLiteral(0))));
  int64_t id = 0, rows = 0;
  for (auto _ : state) {
    rows += MustCount(db.Execute(QueryWithLiteral(id)));
    id = (id + 1) % kHubs;
  }
  benchmark::DoNotOptimize(rows);
}

void BM_WarmText(benchmark::State& state, PlannerOptions::Mode planner) {
  Database db = bench::MakeDatabase(MakeRing(), Opts(planner, true));
  MustBeNonEmpty(MustCount(db.Execute(QueryWithLiteral(0))));  // prime
  int64_t id = 0, rows = 0;
  for (auto _ : state) {
    rows += MustCount(db.Execute(QueryWithLiteral(id)));
    id = (id + 1) % kHubs;
  }
  benchmark::DoNotOptimize(rows);
  const PlanCacheStats& s = db.engine().plan_cache_stats();
  state.counters["hits"] = static_cast<double>(s.hits);
  state.counters["misses"] = static_cast<double>(s.misses);
}

void BM_WarmPrepared(benchmark::State& state, PlannerOptions::Mode planner) {
  Database db = bench::MakeDatabase(MakeRing(), Opts(planner, true));
  auto stmt = db.Prepare(kParamQuery);
  if (!stmt.ok()) {
    std::fprintf(stderr, "prepare failed: %s\n",
                 stmt.status().ToString().c_str());
    std::exit(1);
  }
  MustBeNonEmpty(
      MustCount(db.Execute(*stmt, {{"id", Value::Int(0)}})));  // prime
  int64_t id = 0, rows = 0;
  for (auto _ : state) {
    rows += MustCount(db.Execute(*stmt, {{"id", Value::Int(id)}}));
    id = (id + 1) % kHubs;
  }
  benchmark::DoNotOptimize(rows);
  const PlanCacheStats& s = db.engine().plan_cache_stats();
  state.counters["hits"] = static_cast<double>(s.hits);
  state.counters["misses"] = static_cast<double>(s.misses);
}

void BM_ColdGreedy(benchmark::State& state) {
  BM_Cold(state, PlannerOptions::Mode::kGreedy);
}
void BM_WarmTextGreedy(benchmark::State& state) {
  BM_WarmText(state, PlannerOptions::Mode::kGreedy);
}
void BM_WarmPreparedGreedy(benchmark::State& state) {
  BM_WarmPrepared(state, PlannerOptions::Mode::kGreedy);
}
void BM_ColdDpStarts(benchmark::State& state) {
  BM_Cold(state, PlannerOptions::Mode::kDpStarts);
}
void BM_WarmTextDpStarts(benchmark::State& state) {
  BM_WarmText(state, PlannerOptions::Mode::kDpStarts);
}
void BM_WarmPreparedDpStarts(benchmark::State& state) {
  BM_WarmPrepared(state, PlannerOptions::Mode::kDpStarts);
}

BENCHMARK(BM_ColdGreedy);
BENCHMARK(BM_WarmTextGreedy);
BENCHMARK(BM_WarmPreparedGreedy);
BENCHMARK(BM_ColdDpStarts);
BENCHMARK(BM_WarmTextDpStarts);
BENCHMARK(BM_WarmPreparedDpStarts);

}  // namespace
}  // namespace gqlite

GQLITE_BENCH_MAIN()
