// Mixed read/write throughput under the session API: N reader sessions
// run snapshot-isolated read transactions on their own threads while one
// writer session keeps committing. Reader items/sec should scale with
// the session count — readers never block behind the writer (they pin
// COW snapshots), the writer never blocks behind readers (it owns the
// single writer slot outright).
//
// BM_SnapshotPin isolates the per-transaction cost the MVCC layer adds:
// Begin(kRead) + one query + Commit against a quiescent engine, vs the
// same query auto-committed.

#include <benchmark/benchmark.h>

#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/sync.h"
#include "src/core/session.h"

namespace gqlite {
namespace {

void SeedPeople(Database& db, int64_t n) {
  auto seed = db.Execute("UNWIND range(0, " + std::to_string(n - 1) +
                             ") AS i CREATE (:Person {id: i, score: i % 9})");
  if (!seed.ok()) {
    std::fprintf(stderr, "seed failed: %s\n", seed.status().ToString().c_str());
    std::exit(1);
  }
  auto wire = db.Execute(
      "MATCH (a:Person), (b:Person) WHERE b.id = a.id + 1 "
      "CREATE (a)-[:KNOWS]->(b)");
  if (!wire.ok()) {
    std::fprintf(stderr, "wire failed: %s\n", wire.status().ToString().c_str());
    std::exit(1);
  }
}

/// range(0) = reader session count. Each reader thread runs read
/// transactions (Begin / 2 statements / Commit) for the timed region
/// while the writer thread commits small write transactions in a loop.
/// Items = completed reader transactions.
void BM_MixedReadWrite(benchmark::State& state) {
  const int kReaders = static_cast<int>(state.range(0));
  Database db = bench::MakeEmptyDatabase();
  SeedPeople(db, 256);

  for (auto _ : state) {
    state.PauseTiming();
    AtomicCounter stop;
    AtomicCounter reader_txns;
    std::thread writer([&db, &stop] {
      auto session = db.CreateSession();
      int64_t i = 0;
      while (stop.Load() == 0) {
        if (!session->Begin(TxnMode::kWrite).ok()) continue;
        std::string q = "MATCH (p:Person) WHERE p.id = " +
                        std::to_string(i++ % 256) +
                        " SET p.score = p.score + 1";
        if (!session->Execute(q).ok()) {
          session->Rollback();
          continue;
        }
        session->Commit();
      }
    });
    std::vector<std::thread> readers;
    readers.reserve(kReaders);
    state.ResumeTiming();

    constexpr int kTxnsPerReader = 32;
    for (int t = 0; t < kReaders; ++t) {
      readers.emplace_back([&db, &reader_txns] {
        auto session = db.CreateSession();
        for (int i = 0; i < kTxnsPerReader; ++i) {
          if (!session->Begin(TxnMode::kRead).ok()) continue;
          auto c = session->Execute("MATCH (p:Person) RETURN count(p) AS c");
          auto s = session->Execute(
              "MATCH (p:Person) WHERE p.score > 4 RETURN count(p) AS c");
          benchmark::DoNotOptimize(c);
          benchmark::DoNotOptimize(s);
          session->Commit();
          reader_txns.FetchAdd();
        }
      });
    }
    for (auto& r : readers) r.join();

    state.PauseTiming();
    stop.Store(1);
    writer.join();
    if (reader_txns.Load() !=
        static_cast<size_t>(kReaders) * kTxnsPerReader) {
      state.SkipWithError("reader transactions failed");
      return;
    }
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 32);
}
BENCHMARK(BM_MixedReadWrite)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

/// The MVCC tax on a quiescent engine: explicit read transaction vs
/// auto-commit for the same single statement. Items = statements.
void BM_SnapshotPin(benchmark::State& state) {
  const bool explicit_txn = state.range(0) != 0;
  Database db = bench::MakeEmptyDatabase();
  SeedPeople(db, 256);
  auto session = db.CreateSession();
  for (auto _ : state) {
    if (explicit_txn) {
      if (!session->Begin(TxnMode::kRead).ok()) {
        state.SkipWithError("Begin failed");
        return;
      }
    }
    auto r = session->Execute("MATCH (p:Person) RETURN count(p) AS c");
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(r->table.rows());
    if (explicit_txn) session->Commit();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SnapshotPin)->Arg(0)->Arg(1);

/// Writer commit throughput while snapshots are pinned: a reader session
/// holds a transaction open across the whole run, so every commit COWs
/// pages the pinned snapshot shares. Items = write transactions.
void BM_CommitUnderPinnedSnapshot(benchmark::State& state) {
  Database db = bench::MakeEmptyDatabase();
  SeedPeople(db, 256);
  auto pin = db.CreateSession();
  if (!pin->Begin(TxnMode::kRead).ok()) {
    state.SkipWithError("pin failed");
    return;
  }
  auto writer = db.CreateSession();
  int64_t i = 0;
  for (auto _ : state) {
    if (!writer->Begin(TxnMode::kWrite).ok()) {
      state.SkipWithError("writer Begin failed");
      return;
    }
    std::string q = "MATCH (p:Person) WHERE p.id = " +
                    std::to_string(i++ % 256) + " SET p.score = p.score + 1";
    auto r = writer->Execute(q);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    writer->Commit();
  }
  pin->Commit();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CommitUnderPinnedSnapshot);

}  // namespace
}  // namespace gqlite

GQLITE_BENCH_MAIN()
