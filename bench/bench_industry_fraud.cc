// Experiment E8 (DESIGN.md): the §3 fraud-detection query — shared
// personal information across account holders — swept over dataset size
// and ring density. Exercises label-disjunction predicates (pInfo:SSN OR
// …), collect(), count(*) grouping and the WITH … WHERE filter.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace gqlite {
namespace {

const char* kFraudQuery =
    "MATCH (accHolder:AccountHolder)-[:HAS]->(pInfo) "
    "WHERE pInfo:SSN OR pInfo:PhoneNumber OR pInfo:Address "
    "WITH pInfo, collect(accHolder.uniqueId) AS accountHolders, "
    "count(*) AS fraudRingCount "
    "WHERE fraudRingCount > 1 "
    "RETURN accountHolders, labels(pInfo) AS personalInformation, "
    "fraudRingCount";

void BM_FraudBySize(benchmark::State& state) {
  workload::FraudConfig cfg;
  cfg.num_holders = static_cast<size_t>(state.range(0));
  cfg.num_rings = cfg.num_holders / 100 + 1;
  cfg.ring_size = 4;
  GraphPtr g = workload::MakeFraudGraph(cfg);
  Database db = bench::MakeDatabase(g);
  int64_t rings = 0;
  for (auto _ : state) {
    Table t = bench::MustRun(db, kFraudQuery);
    rings = static_cast<int64_t>(t.NumRows());
    benchmark::DoNotOptimize(t);
  }
  state.counters["rings_found"] = static_cast<double>(rings);
}
BENCHMARK(BM_FraudBySize)->Arg(500)->Arg(2000)->Arg(8000);

void BM_FraudByRingDensity(benchmark::State& state) {
  workload::FraudConfig cfg;
  cfg.num_holders = 2000;
  cfg.num_rings = static_cast<size_t>(state.range(0));
  cfg.ring_size = 5;
  GraphPtr g = workload::MakeFraudGraph(cfg);
  Database db = bench::MakeDatabase(g);
  int64_t rings = 0;
  for (auto _ : state) {
    Table t = bench::MustRun(db, kFraudQuery);
    rings = static_cast<int64_t>(t.NumRows());
    benchmark::DoNotOptimize(t);
  }
  state.counters["rings_found"] = static_cast<double>(rings);
}
BENCHMARK(BM_FraudByRingDensity)->Arg(5)->Arg(20)->Arg(80);

void BM_SharedPairJoin(benchmark::State& state) {
  // The second-degree exposure query: a two-hop join through shared PII.
  workload::FraudConfig cfg;
  cfg.num_holders = static_cast<size_t>(state.range(0));
  cfg.num_rings = cfg.num_holders / 50 + 1;
  cfg.ring_size = 4;
  GraphPtr g = workload::MakeFraudGraph(cfg);
  Database db = bench::MakeDatabase(g);
  for (auto _ : state) {
    Table t = bench::MustRun(
        db,
        "MATCH (a:AccountHolder)-[:HAS]->(p)<-[:HAS]-(b:AccountHolder) "
        "WHERE a.uniqueId < b.uniqueId RETURN count(*) AS pairs");
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(BM_SharedPairJoin)->Arg(500)->Arg(2000);

}  // namespace
}  // namespace gqlite

GQLITE_BENCH_MAIN()
