// Experiment E14 (DESIGN.md): the paper's claim about the Expand operator
// (§2): "it utilizes the fact that the data representation … contains
// direct references from each node via its edges to the related nodes.
// This means that Expand never needs to read any unnecessary data, or
// proceed via an indirection such as an index in order to find related
// nodes."
//
// We compare the adjacency-based Expand with the relational baseline — a
// hash join between the driving rows and the full relationship store —
// for (a) selective expansion from a few anchor nodes, where Expand should
// win by a widening factor as the graph grows, and (b) full scans where
// the hash join amortizes its build.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace gqlite {
namespace {

GraphPtr MakeSocial(int64_t people) {
  workload::SocialConfig cfg;
  cfg.num_people = static_cast<size_t>(people);
  cfg.avg_friends = 8;
  cfg.num_cities = 10;
  return workload::MakeSocialNetwork(cfg);
}

/// Selective: expand the friends-of-friends of ONE person. The adjacency
/// Expand touches only the 2-hop neighbourhood; the hash join builds an
/// index over every FRIEND relationship first.
void BM_SelectiveExpand(benchmark::State& state, bool use_join) {
  GraphPtr g = MakeSocial(state.range(0));
  EngineOptions opts;
  opts.use_join_expand = use_join;
  Database db = bench::MakeDatabase(g, opts);
  const char* q =
      "MATCH (p:Person {name: 'P0'})-[:FRIEND]-(f)-[:FRIEND]-(ff) "
      "RETURN count(*) AS c";
  for (auto _ : state) {
    Table t = bench::MustRun(db, q);
    benchmark::DoNotOptimize(t);
  }
  state.SetLabel(use_join ? "hash-join baseline" : "adjacency Expand");
}

void BM_ExpandAdjacency(benchmark::State& state) {
  BM_SelectiveExpand(state, false);
}
void BM_ExpandHashJoin(benchmark::State& state) {
  BM_SelectiveExpand(state, true);
}

BENCHMARK(BM_ExpandAdjacency)->Arg(1000)->Arg(4000)->Arg(16000);
BENCHMARK(BM_ExpandHashJoin)->Arg(1000)->Arg(4000)->Arg(16000);

/// Full scan: every FRIEND edge is needed; the join's build cost is
/// amortized over all probes, so the gap narrows (crossover shape).
void BM_FullScanExpand(benchmark::State& state, bool use_join) {
  GraphPtr g = MakeSocial(state.range(0));
  EngineOptions opts;
  opts.use_join_expand = use_join;
  Database db = bench::MakeDatabase(g, opts);
  const char* q = "MATCH (a:Person)-[:FRIEND]->(b) RETURN count(*) AS c";
  for (auto _ : state) {
    Table t = bench::MustRun(db, q);
    benchmark::DoNotOptimize(t);
  }
  state.SetLabel(use_join ? "hash-join baseline" : "adjacency Expand");
}

void BM_FullExpandAdjacency(benchmark::State& state) {
  BM_FullScanExpand(state, false);
}
void BM_FullExpandHashJoin(benchmark::State& state) {
  BM_FullScanExpand(state, true);
}

BENCHMARK(BM_FullExpandAdjacency)->Arg(1000)->Arg(4000);
BENCHMARK(BM_FullExpandHashJoin)->Arg(1000)->Arg(4000);

}  // namespace
}  // namespace gqlite

GQLITE_BENCH_MAIN()
