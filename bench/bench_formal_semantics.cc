// Experiments E9–E12 (DESIGN.md): the formal-semantics examples of §4 on
// the Figure 4 graph — rigid satisfaction (Examples 4.2/4.3),
// variable-length satisfaction and bag multiplicity (4.4/4.5), the
// driving-table semantics of Example 4.6, and the §4.2 self-loop
// complexity example. Exits non-zero on mismatch with the paper.

#include <cstdio>

#include "bench/bench_util.h"

namespace gqlite {
namespace {

Table MakeExpected(std::vector<std::string> fields,
                   std::vector<ValueList> rows) {
  Table t(std::move(fields));
  for (auto& r : rows) t.AddRow(std::move(r));
  return t;
}

int RunAll() {
  workload::PaperFigure4 fig = workload::MakePaperFigure4Graph();
  auto N = [&](int i) { return Value::Node(fig.n[i]); };
  Database db = bench::MakeDatabase(fig.graph);
  bool ok = true;

  // E9 / Example 4.2: (x:Teacher) satisfied by n1, n3, n4; (y) by all.
  {
    Table got = bench::MustRun(db, "MATCH (x:Teacher) RETURN x");
    ok &= bench::CheckTable("E9 Example 4.2 (x:Teacher)", got,
                            MakeExpected({"x"}, {{N(1)}, {N(3)}, {N(4)}}));
  }

  // E9 / Example 4.3: (x:Teacher)-[:KNOWS*2]->(y) — exactly p = n1 r1 n2
  // r2 n3 under assignment x=n1, y=n3.
  {
    Table got = bench::MustRun(
        db, "MATCH (x:Teacher)-[:KNOWS*2]->(y) RETURN x, y");
    ok &= bench::CheckTable("E9 Example 4.3 (rigid *2)", got,
                            MakeExpected({"x", "y"}, {{N(1), N(3)}}));
  }

  // E10 / Example 4.4: variable-length with named middle node.
  {
    Table got = bench::MustRun(
        db,
        "MATCH (x:Teacher)-[:KNOWS*1..2]->(z)-[:KNOWS*1..2]->(y:Teacher) "
        "RETURN x, z, y");
    ok &= bench::CheckTable(
        "E10 Example 4.4 (p1 under u1; p2 under u2 and u2')", got,
        MakeExpected({"x", "z", "y"}, {{N(1), N(2), N(3)},
                                       {N(1), N(2), N(4)},
                                       {N(1), N(3), N(4)}}));
  }

  // E10 / Example 4.5: anonymous middle node — the path n1..n4 satisfies
  // the pattern under TWO rigid refinements: two copies of (n1, n4).
  {
    Table got = bench::MustRun(
        db,
        "MATCH (x:Teacher)-[:KNOWS*1..2]->()-[:KNOWS*1..2]->(y:Teacher) "
        "RETURN x, y");
    ok &= bench::CheckTable(
        "E10 Example 4.5 (two copies of u — bag semantics)", got,
        MakeExpected({"x", "y"},
                     {{N(1), N(3)}, {N(1), N(4)}, {N(1), N(4)}}));
  }

  // E11 / Example 4.6: [[MATCH (x)-[:KNOWS*]->(y)]] over T = {(x:n1),
  // (x:n3)} — four rows.
  {
    Table got = bench::MustRun(
        db,
        "MATCH (x) WHERE id(x) IN [0, 2] "
        "MATCH (x)-[:KNOWS*]->(y) RETURN x, y");
    ok &= bench::CheckTable(
        "E11 Example 4.6 (driving-table semantics)", got,
        MakeExpected({"x", "y"}, {{N(1), N(2)},
                                  {N(1), N(3)},
                                  {N(1), N(4)},
                                  {N(3), N(4)}}));
  }

  // E12 / §4.2 complexity example: single node with a self-loop;
  // (x)-[*0..]->(x) returns exactly two matches under relationship
  // isomorphism ("two matches will be returned: one for traversing the
  // unique edge zero times, one for traversing it a single time").
  {
    workload::SelfLoop loop = workload::MakeSelfLoopGraph();
    Database loop_engine = bench::MakeDatabase(loop.graph);
    Table got =
        bench::MustRun(loop_engine, "MATCH (x)-[*0..]->(x) RETURN x");
    bool two = got.NumRows() == 2;
    std::printf("[%s] E12 self-loop (x)-[*0..]->(x): %zu matches "
                "(paper: 2)\n",
                two ? "OK" : "MISMATCH", got.NumRows());
    ok &= two;
  }

  return ok ? 0 : 1;
}

}  // namespace
}  // namespace gqlite

int main() { return gqlite::RunAll(); }
