// Experiment E15 (DESIGN.md): execution-strategy ablation. The paper
// stresses that the clause order "is understood purely declaratively —
// implementations are free to re-order the execution of clauses if this
// does not change the semantics" (§2) and describes Neo4j's cost-based
// planning (IDP + cost model). We compare:
//   * the reference interpreter (naive full enumeration, the formal
//     semantics executed literally);
//   * Volcano with naive left-to-right pattern order;
//   * Volcano with greedy cost-based anchoring;
//   * Volcano with exhaustive anchor search (exact for chain patterns —
//     the chain specialization of IDP).
// The query anchors on a highly selective label at the far end of the
// pattern, so anchor choice changes the intermediate cardinality by
// orders of magnitude.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace gqlite {
namespace {

GraphPtr MakeLopsided(size_t people) {
  // Many Person nodes, ONE Company; everyone works at most one hop from a
  // small core: Person -> Dept -> Company.
  auto g = std::make_shared<PropertyGraph>();
  NodeId company = g->CreateNode({"Company"}, {{"name", Value::String("ACME")}});
  std::vector<NodeId> depts;
  for (int d = 0; d < 10; ++d) {
    NodeId dept = g->CreateNode({"Dept"}, {{"idx", Value::Int(d)}});
    g->CreateRelationship(dept, company, "PART_OF").value();
    depts.push_back(dept);
  }
  for (size_t i = 0; i < people; ++i) {
    NodeId p = g->CreateNode({"Person"}, {{"idx", Value::Int((int64_t)i)}});
    g->CreateRelationship(p, depts[i % depts.size()], "WORKS_IN").value();
  }
  return g;
}

const char* kQuery =
    "MATCH (p:Person)-[:WORKS_IN]->(d:Dept)-[:PART_OF]->(c:Company) "
    "WHERE d.idx = 3 RETURN count(p) AS c";

void RunMode(benchmark::State& state, ExecutionMode mode,
             PlannerOptions::Mode planner,
             ExpandStrategy strategy = ExpandStrategy::kCost,
             DirectionPolicy direction = DirectionPolicy::kCost) {
  GraphPtr g = MakeLopsided(static_cast<size_t>(state.range(0)));
  EngineOptions opts;
  opts.mode = mode;
  opts.planner = planner;
  opts.expand_strategy = strategy;
  opts.direction_policy = direction;
  // This benchmark measures the planner itself: plan reuse would collapse
  // all planner modes onto the warm path (see bench_plancache for that).
  opts.use_plan_cache = false;
  Database db = bench::MakeDatabase(g, opts);
  for (auto _ : state) {
    Table t = bench::MustRun(db, kQuery);
    benchmark::DoNotOptimize(t);
  }
}

void BM_Interpreter(benchmark::State& state) {
  RunMode(state, ExecutionMode::kInterpreter, PlannerOptions::Mode::kGreedy);
}
void BM_VolcanoLeftToRight(benchmark::State& state) {
  RunMode(state, ExecutionMode::kVolcano, PlannerOptions::Mode::kLeftToRight);
}
void BM_VolcanoGreedy(benchmark::State& state) {
  RunMode(state, ExecutionMode::kVolcano, PlannerOptions::Mode::kGreedy);
}
void BM_VolcanoDpStarts(benchmark::State& state) {
  RunMode(state, ExecutionMode::kVolcano, PlannerOptions::Mode::kDpStarts);
}
// Forced-plan rows: each side of the per-hop expand-operator choice,
// under the DP search. Their spread over BM_VolcanoDpStarts (which may
// pick either per hop) is the price of forcing the wrong operator —
// and the differential harness runs exactly these configurations.
void BM_VolcanoForcedAdjacency(benchmark::State& state) {
  RunMode(state, ExecutionMode::kVolcano, PlannerOptions::Mode::kDpStarts,
          ExpandStrategy::kAdjacency);
}
void BM_VolcanoForcedHashJoin(benchmark::State& state) {
  RunMode(state, ExecutionMode::kVolcano, PlannerOptions::Mode::kDpStarts,
          ExpandStrategy::kHashJoin);
}

BENCHMARK(BM_Interpreter)->Arg(500)->Arg(2000);
BENCHMARK(BM_VolcanoLeftToRight)->Arg(500)->Arg(2000)->Arg(8000);
BENCHMARK(BM_VolcanoGreedy)->Arg(500)->Arg(2000)->Arg(8000);
BENCHMARK(BM_VolcanoDpStarts)->Arg(500)->Arg(2000)->Arg(8000);
BENCHMARK(BM_VolcanoForcedAdjacency)->Arg(2000)->Arg(8000);
BENCHMARK(BM_VolcanoForcedHashJoin)->Arg(2000)->Arg(8000);

}  // namespace
}  // namespace gqlite

GQLITE_BENCH_MAIN()
