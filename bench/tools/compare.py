#!/usr/bin/env python3
"""Compare Google-Benchmark JSON outputs against a committed baseline.

Usage:
    compare.py BASELINE_DIR CURRENT_DIR [--threshold 0.15]
               [--min-time-ns 1000] [--no-normalize]

Reads every BENCH_*.json present in BOTH directories, matches benchmarks
by name, and fails (exit 1) when a benchmark regressed by more than
--threshold relative to the baseline.

Because the committed baseline was produced on a different machine than
the CI runner, raw ratios mix machine speed with real regressions. The
comparison therefore normalizes by the MEDIAN ratio across all matched
benchmarks (the "machine factor"): a benchmark only counts as a
regression when it is more than --threshold slower than the baseline
*after* dividing out that shared factor. A genuine regression in one
benchmark barely moves the median, so it still sticks out; a uniformly
slower runner moves every ratio equally and nothing is flagged. Use
--no-normalize when both directories come from the same machine.

Benchmarks faster than --min-time-ns in the baseline are skipped: at
nanosecond scale the runner's jitter swamps any real signal.
"""

import argparse
import glob
import json
import os
import re
import statistics
import sys

TIME_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load_times(path):
    """name -> real_time in ns for one benchmark JSON file.

    When the run used --benchmark_repetitions, the MINIMUM across
    repetitions is used: scheduler/co-tenant interference only ever adds
    time, so the min is the most reproducible estimate of the true cost
    (medians still wobble by tens of percent on busy runners).
    """
    with open(path) as f:
        data = json.load(f)
    times = {}
    for b in data.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        unit = TIME_UNIT_NS.get(b.get("time_unit", "ns"), 1.0)
        name = b["name"]
        # Repetition entries share the base name ("BM_Foo" or
        # "BM_Foo/repeats:5"); keep the fastest.
        name = name.split("/repeats:")[0]
        t = float(b["real_time"]) * unit
        times[name] = min(times.get(name, t), t)
    return times


def main():
    ap = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    ap.add_argument("baseline_dir")
    ap.add_argument("current_dir")
    ap.add_argument(
        "--threshold",
        type=float,
        default=0.15,
        help="maximum tolerated slowdown, e.g. 0.15 = +15%% (default)",
    )
    ap.add_argument(
        "--min-time-ns",
        type=float,
        default=1000.0,
        help="skip benchmarks whose baseline time is below this (noise floor)",
    )
    ap.add_argument(
        "--no-normalize",
        action="store_true",
        help="compare raw ratios (both runs from the same machine)",
    )
    ap.add_argument(
        "--exclude",
        default=None,
        metavar="REGEX",
        help=(
            "skip benchmarks whose name matches REGEX (e.g. multi-worker "
            "rows of bench_parallel, whose times depend on the runner's "
            "core count and would skew the machine factor)"
        ),
    )
    args = ap.parse_args()
    exclude = re.compile(args.exclude) if args.exclude else None

    baseline_files = {
        os.path.basename(p)
        for p in glob.glob(os.path.join(args.baseline_dir, "BENCH_*.json"))
    }
    current_files = {
        os.path.basename(p)
        for p in glob.glob(os.path.join(args.current_dir, "BENCH_*.json"))
    }
    shared = sorted(baseline_files & current_files)
    if not shared:
        print(
            f"error: no BENCH_*.json files shared between "
            f"{args.baseline_dir} and {args.current_dir}",
            file=sys.stderr,
        )
        return 2
    for only_base in sorted(baseline_files - current_files):
        print(f"note: {only_base} only in baseline (benchmark not run?)")
    for only_cur in sorted(current_files - baseline_files):
        print(f"note: {only_cur} has no committed baseline yet")

    rows = []  # (file, name, base_ns, cur_ns, ratio)
    for fname in shared:
        base = load_times(os.path.join(args.baseline_dir, fname))
        cur = load_times(os.path.join(args.current_dir, fname))
        for name in sorted(base.keys() & cur.keys()):
            if base[name] < args.min_time_ns:
                continue
            if exclude is not None and exclude.search(name):
                continue
            rows.append((fname, name, base[name], cur[name], cur[name] / base[name]))
        for name in sorted(base.keys() - cur.keys()):
            print(f"note: {fname}: '{name}' missing from current run")

    if not rows:
        print("error: no comparable benchmarks above the noise floor", file=sys.stderr)
        return 2

    scale = 1.0 if args.no_normalize else statistics.median(r[4] for r in rows)
    limit = scale * (1.0 + args.threshold)
    print(
        f"machine factor (median current/baseline ratio): {scale:.3f}; "
        f"flagging normalized slowdowns beyond +{args.threshold:.0%}"
    )

    regressions = []
    width = max(len(r[1]) for r in rows)
    for fname, name, base_ns, cur_ns, ratio in rows:
        normalized = ratio / scale
        flag = ""
        if ratio > limit:
            flag = "  << REGRESSION"
            regressions.append((fname, name, normalized))
        print(
            f"{name:<{width}}  base {base_ns:>12.0f} ns  "
            f"cur {cur_ns:>12.0f} ns  norm x{normalized:.2f}{flag}"
        )

    if regressions:
        print(f"\nFAIL: {len(regressions)} benchmark(s) regressed >"
              f" {args.threshold:.0%} (normalized):", file=sys.stderr)
        for fname, name, normalized in regressions:
            print(f"  {fname}: {name} (x{normalized:.2f})", file=sys.stderr)
        return 1
    print(f"\nOK: {len(rows)} benchmark(s) within +{args.threshold:.0%} "
          "of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
