#!/usr/bin/env python3
"""Repo-specific banned-API lint, run by the `lint` CMake target and CI.

Three rule families, each encoding a project invariant that neither the
compiler nor clang-tidy enforces:

  raw-sync       Raw std::mutex / std::condition_variable / std::atomic /
                 lock adapters anywhere except src/common/sync.h. Every
                 concurrency primitive must go through the annotated
                 wrappers (Mutex, MutexLock, CondVar, AtomicCounter) so
                 Clang's -Wthread-safety analysis sees every lock and the
                 inventory of primitives stays in one header.

  value-by-value Function parameters taking `Value`/`ValueList` by value
                 in the operator hot paths (src/plan/, src/interp/,
                 src/exec/). Values are O(1) to copy but not free; hot
                 paths take `const Value&` and copy explicitly where a
                 copy is meant.

  nondeterminism Wall-clock / entropy sources in tests/ (std::random_device,
                 srand(time(...)), system_clock::now, steady_clock::now
                 used for seeding). Tests must be deterministic; benches
                 may time themselves, so bench/ is exempt.

  graph-mutation PropertyGraph mutator calls in src/ outside the layers
                 that own writes (src/graph/ itself, src/update/, the
                 src/workload/ generators, and src/storage/ — WAL replay
                 reconstructs the graph through the same mutators).
                 Engine code must route writes through UpdateExecutor
                 under the session/transaction layer, so the
                 single-writer MVCC discipline (frozen snapshots, COW
                 pages, data_version bumps) cannot be bypassed by a
                 stray direct call.

  storage-io     Raw file IO (fstream, fopen, ::open, O_CREAT flags) in
                 src/ or examples/ outside src/storage/. Durability has
                 exactly one home: everything that writes bytes to disk
                 (WAL frames, checkpoint files, fsync discipline) lives
                 behind the StorageEngine interface, so crash-safety
                 invariants (append order, atomic replace, CRC framing)
                 are auditable in one directory.

  engine-construction
                 Direct CypherEngine construction outside src/core/ and
                 tests/. The public entry point is Database::Open /
                 Database::OpenInMemory, which decides durability before
                 any statement runs; a bare engine silently skips the
                 storage layer. Tests may still construct engines to
                 exercise internals.

Waivers: append `// lint: allow(<rule>) <reason>` on the offending line,
or as a full-line comment on the line directly above (for lines that
would blow the 80-column limit). The reason is mandatory — a bare
allow() still fails.

Exit status: 0 clean, 1 findings, 2 usage error.
"""

import os
import re
import sys

REPO_ROOT = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

SOURCE_EXTS = (".h", ".cc", ".cpp")

# rule name -> (pattern, applies_to_path predicate, message)
RULES = [
    (
        "raw-sync",
        re.compile(
            r"std::(mutex|recursive_mutex|shared_mutex|condition_variable"
            r"(_any)?|atomic\b|atomic<|lock_guard|unique_lock|scoped_lock"
            r"|shared_lock)"),
        lambda path: (path.startswith(("src/", "tests/", "bench/",
                                       "examples/"))
                      and path != "src/common/sync.h"),
        "raw synchronization primitive; use the annotated wrappers from "
        "src/common/sync.h (Mutex/MutexLock/CondVar/AtomicCounter)",
    ),
    (
        "value-by-value",
        # A parameter list fragment like `(Value v` / `, ValueList rows` —
        # by-value without const&/&&/*. GQL_ASSIGN_OR_RETURN(Value v, ...)
        # declares a local inside a macro, not a parameter.
        re.compile(r"^(?!.*GQL_ASSIGN_OR_RETURN)"
                   r".*[(,]\s*(Value|ValueList)\s+\w+\s*[,)]"),
        lambda path: path.startswith(("src/plan/", "src/interp/",
                                      "src/exec/")),
        "by-value Value/ValueList parameter in an operator hot path; "
        "take `const Value&` (copy explicitly where a copy is meant)",
    ),
    (
        "nondeterminism",
        re.compile(r"std::random_device|srand\s*\(\s*time\s*\("
                   r"|system_clock::now|steady_clock::now"),
        lambda path: path.startswith("tests/"),
        "nondeterministic seed/clock in a test; use a fixed seed "
        "(tests must be reproducible)",
    ),
    (
        "graph-mutation",
        re.compile(
            r"(?:->|\.)\s*(CreateNode|CreateRelationship|AddLabel"
            r"|RemoveLabel|SetNodeProperty|SetRelProperty|DeleteNode"
            r"|DetachDeleteNode|DeleteRelationship)\s*\("),
        lambda path: (path.startswith("src/")
                      and not path.startswith(("src/graph/", "src/update/",
                                               "src/workload/",
                                               "src/storage/"))),
        "direct PropertyGraph mutation outside the write-owning layers; "
        "route writes through UpdateExecutor / the transaction layer",
    ),
    (
        "storage-io",
        re.compile(r"std::(o|i)?fstream|\bfopen\s*\(|::open\s*\("
                   r"|::creat\s*\(|\bO_CREAT\b|\bO_WRONLY\b|\bO_RDWR\b"),
        lambda path: (path.startswith(("src/", "examples/"))
                      and not path.startswith("src/storage/")),
        "raw file IO outside src/storage/; durability goes through the "
        "StorageEngine interface (WAL + checkpoint)",
    ),
    (
        "engine-construction",
        re.compile(r"\bCypherEngine\s+\w+\s*[;({=]|new\s+CypherEngine\b"
                   r"|make_unique<\s*CypherEngine\b"),
        lambda path: (path.startswith(("src/", "bench/", "examples/"))
                      and not path.startswith("src/core/")),
        "direct CypherEngine construction outside src/core/ and tests/; "
        "open a Database (Database::Open / Database::OpenInMemory)",
    ),
]

ALLOW = re.compile(r"//\s*lint:\s*allow\((?P<rule>[\w-]+)\)\s*(?P<reason>.*)")


def lint_file(relpath, abspath):
    findings = []
    try:
        with open(abspath, encoding="utf-8") as f:
            lines = f.read().splitlines()
    except (OSError, UnicodeDecodeError) as e:
        findings.append((relpath, 0, "io", str(e)))
        return findings
    for lineno, line in enumerate(lines, start=1):
        for rule, pattern, applies, message in (
                (r[0], r[1], r[2], r[3]) for r in RULES):
            if not applies(relpath) or not pattern.search(line):
                continue
            m = ALLOW.search(line)
            if m is None and lineno >= 2:
                prev = lines[lineno - 2].strip()
                if prev.startswith("//"):
                    m = ALLOW.search(prev)
            if m and m.group("rule") == rule:
                if not m.group("reason").strip():
                    findings.append(
                        (relpath, lineno, rule,
                         "allow() waiver is missing its reason"))
                continue  # waived
            findings.append((relpath, lineno, rule, message))
    return findings


def main():
    if len(sys.argv) > 1:
        print(__doc__)
        return 2
    findings = []
    for top in ("src", "tests", "bench", "examples"):
        for dirpath, _, filenames in os.walk(os.path.join(REPO_ROOT, top)):
            for name in sorted(filenames):
                if not name.endswith(SOURCE_EXTS):
                    continue
                abspath = os.path.join(dirpath, name)
                relpath = os.path.relpath(abspath, REPO_ROOT).replace(
                    os.sep, "/")
                findings.extend(lint_file(relpath, abspath))
    for path, lineno, rule, message in findings:
        print(f"{path}:{lineno}: [{rule}] {message}")
    if findings:
        print(f"lint_banned: {len(findings)} finding(s)")
        return 1
    print("lint_banned: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
